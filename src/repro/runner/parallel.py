"""Process-pool execution of simulation jobs with two cache layers.

:class:`ParallelRunner` takes a batch of serialisable jobs
(:mod:`repro.runner.jobs`), satisfies what it can from the persistent
:class:`~repro.runner.store.ResultStore`, and fans the remaining misses
out across a ``concurrent.futures.ProcessPoolExecutor``.  Results come
back in input order regardless of which worker finished first, and every
job carries its own master seed, so a parallel run is bit-identical to the
sequential run of the same batch.

Before fanning out, the runner scans the miss batch for trace identities
needed by two or more jobs (the common shape: one workload swept across
several policies) and materialises each such trace **once** as a
content-addressed shared buffer (:mod:`repro.trace.shared`, stored under
``<store root>/traces/``).  Workers map the buffers zero-copy instead of
regenerating the streams per process; with no persistent store a
runner-lifetime temporary directory holds them.

The worker count defaults to the ``REPRO_JOBS`` environment variable and
falls back to ``os.cpu_count()``; ``jobs=1`` executes inline in the
calling process (no pool, no pickling), which is also the automatic
fast path for single-job batches.

Policy sweeps additionally run a once-per-platform private-level
*capture* pass (:mod:`repro.runner.replaystore`) so every swept job can
execute on the LLC-only replay kernel.  By default captures and sim jobs
share one dependency-edged queue: each sweep's replays are submitted the
moment *its* capture's manifest entry lands, so a slow capture never
stalls unrelated sweeps, and sticky affinity routing keeps a sweep's
capture and replays on one worker (warm decoded-plane and bundle
caches).  ``REPRO_NO_PIPELINE`` restores the two-phase barrier flow;
results are bit-identical either way.

Execution is *supervised* (:mod:`repro.runner.supervisor`): every miss
is submitted as its own future and collected in completion order, so a
worker exception, hang or death costs one job — retried with backoff,
recovered across pool rebuilds, or quarantined as a structured
:class:`~repro.runner.supervisor.FailureRecord` in the result store.
:meth:`ParallelRunner.run` therefore returns **partial results**
(``None`` holes for quarantined jobs) plus :attr:`ParallelRunner.last_failures`
instead of raising mid-batch; a re-invocation against the same store
re-executes only the holes, because completed work is already durable
under its content-addressed keys.
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Sequence

from repro.runner import faults
from repro.runner.jobs import SCHEMA_VERSION, Job, job_from_dict
from repro.runner.replaystore import (
    ReplayStore,
    clear_replay_manifest,
    install_replay_manifest,
)
from repro.runner.store import ResultStore
from repro.runner.supervisor import FailureRecord, RetryPolicy, Supervisor
from repro.trace.shared import (
    SharedTraceStore,
    chunks_for,
    clear_manifest,
    install_manifest,
    shared_traces_enabled,
)


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set to a positive int, else CPU count."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value > 0:
        return value
    return os.cpu_count() or 1


def _job_trace_identities(job: Job) -> list[tuple]:
    """``(benchmark, geometry, core_id, master_seed, n_chunks)`` per core."""
    from repro.sim.build import geometry_of

    geometry = geometry_of(job.config)
    n_chunks = chunks_for(job.quota, job.warmup)
    names = job.benchmarks if job.kind == "workload" else (job.benchmark,)
    return [
        (name, geometry, core_id, job.master_seed, n_chunks)
        for core_id, name in enumerate(names)
    ]


def pipelining_enabled() -> bool:
    """Is the barrier-free capture→replay scheduler on (the default)?

    ``REPRO_NO_PIPELINE`` (non-empty, not ``0``) restores the two-phase
    barrier flow — every capture completes before any replay job is
    submitted.  Results are bit-identical either way; only wall clock
    differs.
    """
    return os.environ.get("REPRO_NO_PIPELINE", "").strip().lower() in ("", "0")


def _counters_snapshot() -> dict:
    """Per-process cache counters the runner aggregates across workers."""
    from repro.cpu.replay_vec import PLANE_STATS
    from repro.runner.replaystore import REGISTRY_STATS

    return {
        "plane_hits": PLANE_STATS["plane_hits"],
        "plane_misses": PLANE_STATS["plane_misses"],
        "bundle_loads": REGISTRY_STATS["bundle_loads"],
    }


def _execute_payload(task: tuple[dict, list[dict], list[dict], str, int]) -> dict:
    """Worker entry point: dict in, dict out — nothing exotic crosses the pipe.

    The shared-trace and replay-capture manifests ride along with every
    payload; installing them is idempotent (mappings and bundles are
    cached per path), so a worker reusing a process across tasks maps
    each buffer once — and a *fresh* worker after a pool rebuild needs no
    re-initialisation beyond its first task.  The job's cache key and
    attempt number ride along too, for the fault-injection harness.

    The wire dict carries a ``_counters`` delta (plane-cache hits/misses,
    bundle loads) that the parent strips and folds into ``runner.stats``.
    """
    payload, manifest, replay_manifest, key, attempt = task
    if manifest:
        install_manifest(manifest)
    install_replay_manifest(replay_manifest)
    faults.maybe_fail(key, attempt, allow_exit=True)
    before = _counters_snapshot()
    result = job_from_dict(payload).execute().to_dict()
    after = _counters_snapshot()
    result["_counters"] = {name: after[name] - before[name] for name in after}
    return result


def _execute_task(task: tuple[str, object]) -> object:
    """Worker entry point for the pipelined scheduler: tagged tasks.

    One pool serves both job families, so a worker alternates freely
    between ``("capture", ...)`` and ``("sim", ...)`` tasks as the
    dependency-edged queue drains.
    """
    tag, inner = task
    if tag == "capture":
        payload, manifest, key, attempt = inner
        if manifest:
            install_manifest(manifest)
        faults.maybe_fail(key, attempt, allow_exit=True)
        try:
            return _materialise_capture(payload)
        except Exception:
            # Replay is a pure optimisation: a failed capture costs its
            # manifest entry, never the batch — the affected sweep runs
            # on the fused kernel instead.
            return None
    return _execute_payload(inner)


def _execute_capture(task: tuple[dict, list[dict]]) -> dict | None:
    """Worker entry point for one barrier-phase capture job.

    Captures are scheduled ahead of the replay jobs that depend on them;
    the shared-trace manifest is installed first so the capture pass
    replays materialised trace buffers zero-copy instead of regenerating.
    Replay is a pure optimisation, so *any* failure degrades to ``None``
    — the affected sweep simply runs on the fused kernel.
    """
    payload, manifest = task
    if manifest:
        install_manifest(manifest)
    try:
        return _materialise_capture(payload)
    except Exception:
        return None


def _materialise_capture(payload: dict) -> dict:
    """Run one capture job (in a worker or inline); returns its entry.

    JIT-compiles any requested array-native backend first, while the
    capture is the batch's critical path, so the first swept replay in
    this worker doesn't pay the compilation stall.
    """
    from repro.cpu import capture_vec, replay_vec

    if replay_vec.replay_vec_requested():
        replay_vec.warm_backend()
    if capture_vec.capture_vec_requested():
        capture_vec.warm_backend()
    return ReplayStore(payload["root"]).materialise(
        tuple(payload["benchmarks"]),
        _config_from(payload["config"]),
        payload["quota"],
        payload["warmup"],
        payload["master_seed"],
    )


def _config_from(data: dict):
    from repro.sim.config import SystemConfig

    return SystemConfig.from_dict(data)


class ParallelRunner:
    """Shard independent jobs across processes, backed by the result store.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` or ``0`` means :func:`default_jobs`.
    store:
        Optional persistent :class:`ResultStore` (the L2 cache).  Misses
        are simulated and written back; hits skip simulation entirely.
    use_cache:
        When ``False`` the store is neither read nor written — every job
        is simulated fresh (the ``--no-cache`` CLI behaviour).
    share_traces:
        When ``True`` (default), traces needed by two or more miss jobs
        are materialised once and mapped zero-copy by every executor
        (also gated by the ``REPRO_NO_SHARED_TRACES`` environment
        variable).  Results are bit-identical either way.
    retry:
        The batch :class:`~repro.runner.supervisor.RetryPolicy`
        (``None`` reads ``REPRO_MAX_RETRIES`` / ``REPRO_JOB_TIMEOUT`` /
        ``REPRO_RETRY_BACKOFF`` from the environment).
    """

    def __init__(
        self,
        jobs: int | None = None,
        store: ResultStore | None = None,
        use_cache: bool = True,
        share_traces: bool = True,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.store = store
        self.use_cache = use_cache
        self.share_traces = share_traces
        self.retry = retry or RetryPolicy.from_env()
        self._traces: SharedTraceStore | None = None
        self._trace_tmpdir: tempfile.TemporaryDirectory | None = None
        #: Lifetime counters: ``store_hits`` results re-read from disk,
        #: ``executed`` simulations completed (counted per job, as each
        #: finishes), ``failed`` jobs quarantined after retries, the
        #: supervisor's ``retried``/``timeouts``/``pool_rebuilds`` and
        #: sticky-routing ``sticky_hits``/``sticky_misses``, plus the
        #: cache-affinity counters aggregated across workers:
        #: ``bundle_loads`` (replay artifacts read from disk) and
        #: ``plane_hits``/``plane_misses`` (decoded-plane cache, see
        #: :mod:`repro.cpu.replay_vec`).
        self.stats = {
            "store_hits": 0,
            "executed": 0,
            "failed": 0,
            "retried": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "sticky_hits": 0,
            "sticky_misses": 0,
            "plane_hits": 0,
            "plane_misses": 0,
            "bundle_loads": 0,
        }
        #: Every quarantined job over the runner's lifetime, and the
        #: subset from the most recent :meth:`run` batch.
        self.failures: list[FailureRecord] = []
        self.last_failures: list[FailureRecord] = []

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Reclaim the runner-lifetime temporary trace directory (if any)."""
        tmpdir, self._trace_tmpdir = self._trace_tmpdir, None
        if tmpdir is not None:
            self._traces = None
            tmpdir.cleanup()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> list:
        """Execute *jobs*; returns their results in input order.

        Duplicate jobs (same cache key) within a batch are simulated
        once.  A job that exhausts its retries yields ``None`` in the
        returned list (and a :class:`FailureRecord` in
        :attr:`last_failures` plus, with a store, a persisted failure
        record) rather than aborting the batch — completed results are
        always returned, and a later invocation re-executes only the
        holes.
        """
        order: list[str] = []
        unique: dict[str, Job] = {}
        for job in jobs:
            key = job.cache_key()
            order.append(key)
            unique.setdefault(key, job)

        results: dict[str, object] = {}
        misses: list[tuple[str, Job]] = []
        for key, job in unique.items():
            cached = self._load(key, job)
            if cached is not None:
                results[key] = cached
            else:
                misses.append((key, job))
        self.last_failures = []

        manifest = self._prepare_traces([job for _, job in misses])
        if manifest:
            # Install in this process too: inline execution replays the
            # same buffers the pool workers map.
            install_manifest(manifest)
        # One supervisor (and pool) serves both phases: the capture jobs
        # warm the workers (imports, trace-buffer mmaps) for the batch.
        supervisor = Supervisor(
            workers=min(self.jobs, len(misses)) if len(misses) > 1 else 1,
            policy=self.retry,
        )
        counters_before = _counters_snapshot()
        try:
            plan = self._plan_captures([job for _, job in misses])
            if plan and pipelining_enabled():
                # Barrier-free: capture and replay jobs share one
                # dependency-edged queue — each sweep's replays are
                # submitted the moment *its* capture's entry lands.
                iterator = self._execute_pipelined(supervisor, misses, manifest, plan)
            else:
                # Two-phase barrier: capture jobs run ahead of every
                # replay job (they need the trace manifest in workers).
                replay_manifest = self._prepare_replays(plan, manifest, supervisor)
                install_replay_manifest(replay_manifest)
                iterator = self._execute(supervisor, misses, manifest, replay_manifest)
            for key, job, outcome in iterator:
                if isinstance(outcome, FailureRecord):
                    self.stats["failed"] += 1
                    self.failures.append(outcome)
                    self.last_failures.append(outcome)
                    self._record_failure(job, outcome)
                else:
                    self.stats["executed"] += 1
                    results[key] = outcome
                    self._save(key, job, outcome)
        except BaseException:
            # Don't block behind queued work when the batch is going down.
            supervisor.shutdown(cancel=True)
            raise
        else:
            supervisor.shutdown()
        finally:
            for name, value in supervisor.stats.items():
                self.stats[name] += value
            counters_after = _counters_snapshot()
            for name in counters_after:
                self.stats[name] += counters_after[name] - counters_before[name]
            clear_replay_manifest()
            if manifest:
                clear_manifest()

        return [results.get(key) for key in order]

    def run_one(self, job: Job):
        return self.run([job])[0]

    def _execute(
        self,
        supervisor: Supervisor,
        misses: list[tuple[str, Job]],
        manifest: list[dict],
        replay_manifest: list[dict],
    ):
        if not misses:
            return iter(())

        def decode(job, data):
            counters = data.pop("_counters", None)
            if counters:
                for name, value in counters.items():
                    self.stats[name] = self.stats.get(name, 0) + value
            return job.result_from_dict(data)

        return supervisor.run_jobs(
            misses,
            worker_fn=_execute_payload,
            task_for=lambda key, job, attempt: (
                job.to_dict(),
                manifest,
                replay_manifest,
                key,
                attempt,
            ),
            inline_fn=lambda key, job: job.execute(),
            decode=decode,
        )

    # -- shared traces -----------------------------------------------------------

    def trace_store(self) -> SharedTraceStore:
        """The shared-trace buffer store (created on first use).

        Lives under ``<result store root>/traces`` so buffers persist and
        are reused content-addressed across invocations.  Without a result
        store — or with ``use_cache=False``, which promises the store is
        neither read nor written — a runner-lifetime temporary directory
        backs them instead.
        """
        if self._traces is None:
            if self.store is not None and self.use_cache:
                root = self.store.root / "traces"
            else:
                self._trace_tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-traces-"
                )
                root = self._trace_tmpdir.name
            self._traces = SharedTraceStore(root)
        return self._traces

    def _prepare_traces(self, jobs: list[Job]) -> list[dict]:
        """Materialise every trace needed by two or more miss jobs.

        Returns the manifest the executors install; empty when sharing is
        off, nothing overlaps, or buffer I/O fails (every failure mode
        falls back to per-process generation, which is always equivalent).
        """
        if not self.share_traces or len(jobs) < 2 or not shared_traces_enabled():
            return []
        needed: dict[tuple, int] = {}
        counts: dict[tuple, int] = {}
        geometries: dict[tuple, object] = {}
        for job in jobs:
            for name, geometry, core_id, seed, n_chunks in _job_trace_identities(job):
                ident = (
                    name,
                    geometry.llc_num_sets,
                    geometry.l2_blocks,
                    geometry.l1_blocks,
                    core_id,
                    seed,
                )
                counts[ident] = counts.get(ident, 0) + 1
                needed[ident] = max(needed.get(ident, 0), n_chunks)
                geometries[ident] = geometry
        shared = [ident for ident, n in counts.items() if n >= 2]
        if not shared:
            return []
        from repro.trace.benchmarks import BENCHMARKS

        manifest = []
        store = self.trace_store()
        try:
            for ident in shared:
                name, _, _, _, core_id, seed = ident
                spec = BENCHMARKS.get(name)
                if spec is None:
                    continue
                manifest.append(
                    store.materialise(
                        spec, geometries[ident], core_id, seed, needed[ident]
                    )
                )
        except OSError:
            return []
        return manifest

    # -- replay captures ---------------------------------------------------------

    def _plan_captures(self, jobs: list[Job]) -> dict[tuple, dict]:
        """Swept capture identities of a miss batch, with worker payloads.

        A *sweep* is two or more miss jobs sharing one capture identity —
        same workload, private-level platform and budgets, different LLC
        policy.  Returns ``{identity: payload}`` (the payload already
        carries the store root); empty when sharing is off, replay is
        disabled, nothing is swept, or the store root is unavailable —
        every one of which degrades to the fused kernel.
        """
        from repro.cpu.replay import replay_enabled
        from repro.sim.build import capture_identity

        if not self.share_traces or len(jobs) < 2 or not replay_enabled():
            return {}
        counts: dict[tuple, int] = {}
        payloads: dict[tuple, dict] = {}
        for job in jobs:
            if job.kind != "workload":
                continue
            identity = capture_identity(
                job.benchmarks, job.config, job.quota, job.warmup, job.master_seed
            )
            counts[identity] = counts.get(identity, 0) + 1
            payloads.setdefault(
                identity,
                {
                    "benchmarks": list(job.benchmarks),
                    "config": job.config.to_dict(),
                    "quota": job.quota,
                    "warmup": job.warmup,
                    "master_seed": job.master_seed,
                },
            )
        swept = [ident for ident, count in counts.items() if count >= 2]
        if not swept:
            return {}
        try:
            root = str(self.trace_store().root)
        except OSError:
            return {}
        plan: dict[tuple, dict] = {}
        for ident in swept:
            payload = dict(payloads[ident])
            payload["root"] = root
            plan[ident] = payload
        return plan

    def _prepare_replays(
        self,
        plan: dict[tuple, dict],
        trace_manifest: list[dict],
        supervisor: Supervisor,
    ) -> list[dict]:
        """Barrier-phase capture: run every planned capture to completion.

        One capture job runs per swept identity, scheduled through the
        batch's worker pool ahead of it (captures parallelise across
        identities and warm the workers' buffer mappings), and the
        resulting manifest makes every swept job execute on the
        LLC-filtered replay kernel.  A failed capture costs its entry,
        never the batch — the affected sweep runs on the fused kernel.
        """
        if not plan:
            return []
        tasks = [(payload, trace_manifest) for payload in plan.values()]
        entries = supervisor.map_resilient(_execute_capture, tasks)
        return [entry for entry in entries if entry]

    def _execute_pipelined(
        self,
        supervisor: Supervisor,
        misses: list[tuple[str, Job]],
        manifest: list[dict],
        plan: dict[tuple, dict],
    ):
        """Dependency-edged execution: captures and sims share one queue.

        Every planned capture becomes a supervised job; each swept sim
        job depends on its capture's key, so the supervisor withholds it
        until the capture's manifest entry lands — and unrelated jobs
        flow freely around a slow (or hung, or crashed) capture.  Capture
        outcomes are folded into the growing replay manifest here and
        never surface to the caller; only sim outcomes are yielded.

        Both job families carry the capture artifact's path as their
        affinity token, so the supervisor's sticky routing lands a
        sweep's capture *and* its replays on one worker — the worker that
        decoded the bundle's planes keeps serving it (``plane_hits`` /
        ``bundle_loads`` in :attr:`stats` make the reuse observable).
        """
        from repro.cpu.capture import replay_slack
        from repro.runner.replaystore import replay_key
        from repro.sim.build import capture_identity

        slack = replay_slack()
        capture_jobs: list[tuple[str, dict]] = []
        routes: dict[tuple, tuple[str, str]] = {}
        affinity: dict[str, str] = {}
        for identity, payload in plan.items():
            key = replay_key(identity, slack)
            ckey = f"capture:{key}"
            token = str(ReplayStore(payload["root"]).path_for(key))
            routes[identity] = (ckey, token)
            capture_jobs.append((ckey, payload))
            affinity[ckey] = token
        dependencies: dict[str, str] = {}
        for key, job in misses:
            if job.kind != "workload":
                continue
            identity = capture_identity(
                job.benchmarks, job.config, job.quota, job.warmup, job.master_seed
            )
            route = routes.get(identity)
            if route is not None:
                dependencies[key] = route[0]
                affinity[key] = route[1]
        capture_keys = {ckey for ckey, _ in capture_jobs}
        replay_manifest: list[dict] = []

        def task_for(key, job, attempt):
            if key in capture_keys:
                return ("capture", (job, manifest, key, attempt))
            # Snapshot at submit time: the job's capture (if any) has
            # already landed, so its entry is aboard.
            return ("sim", (job.to_dict(), manifest, list(replay_manifest), key, attempt))

        def inline_fn(key, job):
            if key in capture_keys:
                return _materialise_capture(job)
            return job.execute()

        def decode(job, data):
            if not isinstance(job, Job):
                return data  # capture outcome: the manifest entry (or None)
            counters = data.pop("_counters", None)
            if counters:
                for name, value in counters.items():
                    self.stats[name] = self.stats.get(name, 0) + value
            return job.result_from_dict(data)

        for key, job, outcome in supervisor.run_jobs(
            capture_jobs + list(misses),
            worker_fn=_execute_task,
            task_for=task_for,
            inline_fn=inline_fn,
            decode=decode,
            dependencies=dependencies,
            affinity=affinity,
        ):
            if key in capture_keys:
                # A FailureRecord or None here only costs the sweep its
                # replay kernel; the parent install keeps inline
                # execution and the manifest snapshots coherent.
                if isinstance(outcome, dict):
                    replay_manifest.append(outcome)
                    install_replay_manifest(replay_manifest)
                continue
            yield key, job, outcome

    # -- store plumbing ----------------------------------------------------------

    def _load(self, key: str, job: Job):
        if self.store is None or not self.use_cache:
            return None
        payload = self.store.get(key)
        if not payload or payload.get("schema") != SCHEMA_VERSION:
            return None
        if payload.get("kind") == "failure" or "result" not in payload:
            # A persisted FailureRecord is informational, not a result:
            # resuming re-executes the job (and overwrites the record on
            # success).
            return None
        try:
            result = job.result_from_dict(payload["result"])
        except (KeyError, TypeError):
            return None
        self.stats["store_hits"] += 1
        return result

    def _save(self, key: str, job: Job, result) -> None:
        if self.store is None or not self.use_cache:
            return
        self.store.put(
            key,
            {
                "schema": SCHEMA_VERSION,
                "kind": job.kind,
                "job": job.to_dict(),
                "result": result.to_dict(),
            },
        )

    def _record_failure(self, job: Job, failure: FailureRecord) -> None:
        """Persist a quarantined job so it is never silently dropped.

        The record lives at the job's own cache key — enumerable via
        :meth:`ResultStore.failures`, read as a *miss* by :meth:`_load`
        (so a resumed run retries the job) and overwritten by the result
        when a retry eventually succeeds.
        """
        if self.store is None or not self.use_cache:
            return
        self.store.put(
            failure.key,
            {
                "schema": SCHEMA_VERSION,
                "kind": "failure",
                "job": job.to_dict(),
                "failure": failure.to_dict(),
            },
        )
