"""Process-pool execution of simulation jobs with two cache layers.

:class:`ParallelRunner` takes a batch of serialisable jobs
(:mod:`repro.runner.jobs`), satisfies what it can from the persistent
:class:`~repro.runner.store.ResultStore`, and fans the remaining misses
out across a ``concurrent.futures.ProcessPoolExecutor``.  Results come
back in input order regardless of which worker finished first, and every
job carries its own master seed, so a parallel run is bit-identical to the
sequential run of the same batch.

The worker count defaults to the ``REPRO_JOBS`` environment variable and
falls back to ``os.cpu_count()``; ``jobs=1`` executes inline in the
calling process (no pool, no pickling), which is also the automatic
fast path for single-job batches.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.runner.jobs import SCHEMA_VERSION, Job, job_from_dict
from repro.runner.store import ResultStore


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set to a positive int, else CPU count."""
    raw = os.environ.get("REPRO_JOBS", "")
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value > 0:
        return value
    return os.cpu_count() or 1


def _execute_payload(payload: dict) -> dict:
    """Worker entry point: dict in, dict out — nothing exotic crosses the pipe."""
    return job_from_dict(payload).execute().to_dict()


class ParallelRunner:
    """Shard independent jobs across processes, backed by the result store.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` or ``0`` means :func:`default_jobs`.
    store:
        Optional persistent :class:`ResultStore` (the L2 cache).  Misses
        are simulated and written back; hits skip simulation entirely.
    use_cache:
        When ``False`` the store is neither read nor written — every job
        is simulated fresh (the ``--no-cache`` CLI behaviour).
    """

    def __init__(
        self,
        jobs: int | None = None,
        store: ResultStore | None = None,
        use_cache: bool = True,
    ) -> None:
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.store = store
        self.use_cache = use_cache
        #: Lifetime counters: ``store_hits`` results re-read from disk,
        #: ``executed`` simulations actually performed.
        self.stats = {"store_hits": 0, "executed": 0}

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> list:
        """Execute *jobs*; returns their results in input order.

        Duplicate jobs (same cache key) within a batch are simulated once.
        """
        order: list[str] = []
        unique: dict[str, Job] = {}
        for job in jobs:
            key = job.cache_key()
            order.append(key)
            unique.setdefault(key, job)

        results: dict[str, object] = {}
        misses: list[tuple[str, Job]] = []
        for key, job in unique.items():
            cached = self._load(key, job)
            if cached is not None:
                results[key] = cached
            else:
                misses.append((key, job))

        for key, job, result in self._execute(misses):
            results[key] = result
            self._save(key, job, result)

        return [results[key] for key in order]

    def run_one(self, job: Job):
        return self.run([job])[0]

    def _execute(self, misses: list[tuple[str, Job]]):
        self.stats["executed"] += len(misses)
        if not misses:
            return
        if self.jobs <= 1 or len(misses) == 1:
            for key, job in misses:
                yield key, job, job.execute()
            return
        payloads = [job.to_dict() for _, job in misses]
        workers = min(self.jobs, len(misses))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for (key, job), data in zip(misses, pool.map(_execute_payload, payloads)):
                yield key, job, job.result_from_dict(data)

    # -- store plumbing ----------------------------------------------------------

    def _load(self, key: str, job: Job):
        if self.store is None or not self.use_cache:
            return None
        payload = self.store.get(key)
        if not payload or payload.get("schema") != SCHEMA_VERSION:
            return None
        try:
            result = job.result_from_dict(payload["result"])
        except (KeyError, TypeError):
            return None
        self.stats["store_hits"] += 1
        return result

    def _save(self, key: str, job: Job, result) -> None:
        if self.store is None or not self.use_cache:
            return
        self.store.put(
            key,
            {
                "schema": SCHEMA_VERSION,
                "kind": job.kind,
                "job": job.to_dict(),
                "result": result.to_dict(),
            },
        )
