"""Artifact integrity: checksum sidecars and the quarantine area.

Shared trace buffers (``<key>.npy``) and replay captures
(``replay-<key>.npz``) are pure caches, but a *silently corrupt* cache
is worse than a missing one — a bit-flipped ``.npy`` still loads and
would feed wrong accesses into a simulation.  Every artifact therefore
gets a ``<name>.sha256`` sidecar written right after the atomic rename,
and every reader verifies it before mapping/loading.

A failed verification never crashes the reader: the damaged artifact
(plus its sidecar) is moved into a ``quarantine/`` directory next to it
— preserved for inspection, out of the content-addressed namespace — so
the next materialisation sees a plain miss and regenerates/recaptures.
Artifacts written before checksums existed have no sidecar and verify
as ``None`` (unknown); they are still subject to the structural checks
the loaders already performed.

``repro-experiments traces gc`` reports quarantine contents and, with
``--fix``, moves freshly detected corrupt artifacts there itself.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

CHECKSUM_SUFFIX = ".sha256"
META_SUFFIX = ".meta.json"
QUARANTINE_DIRNAME = "quarantine"


def checksum_path(path: str | Path) -> Path:
    return Path(str(path) + CHECKSUM_SUFFIX)


def meta_path(path: str | Path) -> Path:
    """The provenance sidecar of an artifact (``<name>.meta.json``)."""
    return Path(str(path) + META_SUFFIX)


def write_meta(path: str | Path, meta: dict) -> Path:
    """Write an artifact's provenance sidecar (deterministic bytes)."""
    import json

    sidecar = meta_path(path)
    sidecar.write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sidecar


def read_meta(path: str | Path) -> dict | None:
    """The provenance sidecar's contents, or ``None`` (absent/unreadable)."""
    import json

    try:
        meta = json.loads(meta_path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return meta if isinstance(meta, dict) else None


def file_digest(path: str | Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_checksum(path: str | Path) -> Path:
    """Write the sidecar for an artifact that was just persisted."""
    sidecar = checksum_path(path)
    sidecar.write_text(file_digest(path) + "\n", encoding="utf-8")
    return sidecar


def verify_artifact(path: str | Path) -> bool | None:
    """``True`` checksum matches, ``False`` mismatch/unreadable, ``None``
    when no sidecar exists (a pre-checksum artifact — unknown)."""
    sidecar = checksum_path(path)
    try:
        expected = sidecar.read_text(encoding="utf-8").strip()
    except OSError:
        return None
    try:
        return file_digest(path) == expected
    except OSError:
        return False


def quarantine_dir(root: str | Path) -> Path:
    return Path(root) / QUARANTINE_DIRNAME


def quarantine(path: str | Path, reason: str = "") -> Path | None:
    """Move a damaged artifact (and its sidecar) into ``quarantine/``.

    Returns the new location, or ``None`` when the move failed — e.g. a
    concurrent reader already quarantined it, which is fine: the goal
    (artifact out of the live namespace) is met either way.
    """
    path = Path(path)
    target_dir = path.parent / QUARANTINE_DIRNAME
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        os.replace(path, target)
    except OSError:
        return None
    for sidecar in (checksum_path(path), meta_path(path)):
        if sidecar.is_file():
            try:
                os.replace(sidecar, target_dir / sidecar.name)
            except OSError:
                pass
    if reason:
        try:
            (target_dir / (path.name + ".reason")).write_text(
                reason + "\n", encoding="utf-8"
            )
        except OSError:
            pass
    return target


def quarantined_artifacts(root: str | Path) -> list[Path]:
    """Every artifact currently held in ``<root>/quarantine/``."""
    directory = quarantine_dir(root)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.iterdir()
        if p.is_file()
        and not p.name.endswith(CHECKSUM_SUFFIX)
        and not p.name.endswith(META_SUFFIX)
        and not p.name.endswith(".reason")
    )
