"""Serialisable job descriptions for the experiment runner.

A *job* is a self-contained, picklable description of one simulation:
either a multi-programmed workload run (:class:`WorkloadJob`, executed by
:func:`repro.sim.multi.run_workload`) or a single-application baseline run
(:class:`AloneJob`, executed by :func:`repro.sim.single.run_alone`).

Jobs round-trip through ``to_dict``/``from_dict`` so they can cross
process boundaries as plain JSON-safe payloads, and every job derives a
stable :meth:`cache_key` — a SHA-256 over its canonical JSON form, i.e.
over workload composition + full system configuration + policy + quotas +
master seed.  The key is what the persistent result store is indexed by,
so two invocations (or two different figures) that need the same run share
one simulation.

Policies with constructor arguments (Figure 1's duelling-set variants, the
ablation sweeps) are described by :class:`~repro.policies.spec.PolicySpec`
— a name plus canonicalised keyword arguments — instead of live policy
objects, which keeps those runs serialisable and cacheable too.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.policies.spec import PolicySpec
from repro.sim.config import SystemConfig
from repro.sim.results import SingleRunResult, WorkloadResult
from repro.trace.workloads import Workload

#: Bump when the job/result encoding changes incompatibly; part of every
#: cache key so stale store entries are simply never hit.
SCHEMA_VERSION = 1


def _policy_to_payload(policy: str | PolicySpec) -> str | dict:
    return policy if isinstance(policy, str) else policy.to_dict()


def _policy_from_payload(payload: str | dict) -> str | PolicySpec:
    return payload if isinstance(payload, str) else PolicySpec.from_dict(payload)


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


@dataclass(frozen=True)
class WorkloadJob:
    """One multi-programmed run: workload x config x policy x budgets x seed."""

    workload_name: str
    benchmarks: tuple[str, ...]
    config: SystemConfig
    policy: str | PolicySpec
    quota: int
    warmup: int
    master_seed: int

    kind = "workload"

    @staticmethod
    def for_workload(
        workload: Workload,
        config: SystemConfig,
        policy: str | PolicySpec,
        *,
        quota: int,
        warmup: int,
        master_seed: int,
    ) -> "WorkloadJob":
        return WorkloadJob(
            workload_name=workload.name,
            benchmarks=tuple(workload.benchmarks),
            config=config,
            policy=policy,
            quota=quota,
            warmup=warmup,
            master_seed=master_seed,
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workload_name": self.workload_name,
            "benchmarks": list(self.benchmarks),
            "config": self.config.to_dict(),
            "policy": _policy_to_payload(self.policy),
            "quota": self.quota,
            "warmup": self.warmup,
            "master_seed": self.master_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadJob":
        return cls(
            workload_name=data["workload_name"],
            benchmarks=tuple(data["benchmarks"]),
            config=SystemConfig.from_dict(data["config"]),
            policy=_policy_from_payload(data["policy"]),
            quota=data["quota"],
            warmup=data["warmup"],
            master_seed=data["master_seed"],
        )

    def cache_key(self) -> str:
        return _digest({"v": SCHEMA_VERSION, **self.to_dict()})

    def execute(self) -> WorkloadResult:
        from repro.sim.multi import run_workload

        workload = Workload(self.workload_name, self.benchmarks)
        return run_workload(
            workload,
            self.config,
            self.policy,
            quota=self.quota,
            warmup=self.warmup,
            master_seed=self.master_seed,
        )

    def result_from_dict(self, data: dict) -> WorkloadResult:
        return WorkloadResult.from_dict(data)


@dataclass(frozen=True)
class AloneJob:
    """One single-application baseline/characterisation run."""

    benchmark: str
    config: SystemConfig
    policy: str
    quota: int
    warmup: int
    master_seed: int
    monitor: bool = False
    monitor_all_sets: bool = False

    kind = "alone"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "config": self.config.to_dict(),
            "policy": self.policy,
            "quota": self.quota,
            "warmup": self.warmup,
            "master_seed": self.master_seed,
            "monitor": self.monitor,
            "monitor_all_sets": self.monitor_all_sets,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AloneJob":
        return cls(
            benchmark=data["benchmark"],
            config=SystemConfig.from_dict(data["config"]),
            policy=data["policy"],
            quota=data["quota"],
            warmup=data["warmup"],
            master_seed=data["master_seed"],
            monitor=data.get("monitor", False),
            monitor_all_sets=data.get("monitor_all_sets", False),
        )

    def cache_key(self) -> str:
        return _digest({"v": SCHEMA_VERSION, **self.to_dict()})

    def execute(self) -> SingleRunResult:
        from repro.sim.single import run_alone

        return run_alone(
            self.benchmark,
            self.config,
            policy=self.policy,
            quota=self.quota,
            warmup=self.warmup,
            master_seed=self.master_seed,
            monitor=self.monitor,
            monitor_all_sets=self.monitor_all_sets,
        )

    def result_from_dict(self, data: dict) -> SingleRunResult:
        return SingleRunResult.from_dict(data)


Job = WorkloadJob | AloneJob

_JOB_KINDS = {WorkloadJob.kind: WorkloadJob, AloneJob.kind: AloneJob}


def job_from_dict(data: dict) -> Job:
    """Reconstruct a job from its ``to_dict`` payload (dispatch on kind)."""
    kind = data.get("kind")
    cls = _JOB_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown job kind {kind!r}")
    return cls.from_dict(data)
