"""Content-addressed replay-capture artifacts and their per-process registry.

The second kind of shared buffer in the result store's ``traces/``
directory (next to the zero-copy trace buffers of
:mod:`repro.trace.shared`): one ``replay-<key>.npz`` per distinct
``(workload, private-level platform, budgets, seed)``, holding the
private-level streams a whole policy sweep replays through the
LLC-filtered kernel (:mod:`repro.cpu.replay`).

Artifacts are structured-NumPy end to end — per-core ``uint8`` step
streams and structured event records plus one JSON meta blob (bundle
identity, checkpoints, baseline/finish stat records) — written atomically
and addressed by a SHA-256 over the capture identity, so a stale or
foreign file is simply never loaded.

The lifecycle mirrors shared traces, driven by
:class:`~repro.runner.parallel.ParallelRunner`:

1. the parent scans a miss batch for platform identities swept by two or
   more jobs and schedules one **capture job** per identity ahead of the
   batch (through the same worker pool, so captures parallelise);
2. the resulting manifest rides along with every worker payload;
   :func:`install_replay_manifest` registers the artifacts in the
   executing process;
3. :func:`active_replay_bundle` (consulted by
   :func:`repro.sim.multi.run_workload`) lazily loads and caches the
   bundle for a registered identity, so every swept job runs on the
   replay kernel with an automatic fallback to the fused loop;
4. the parent clears the registry after the batch; files persist and are
   reused content-addressed by later invocations.

``REPRO_NO_REPLAY`` (or ``REPRO_NO_FASTPATH``) disables the whole
mechanism; results are bit-identical either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.cpu.capture import CAPTURE_FORMAT, EVENT_DTYPE, CaptureBundle, CoreTape
from repro.runner import faults
from repro.runner.integrity import quarantine, verify_artifact, write_checksum

_KEY_LEN = 40


def replay_key(identity: tuple, slack: float) -> str:
    """Content address of one capture artifact."""
    blob = json.dumps(
        {"v": CAPTURE_FORMAT, "identity": list(identity), "slack": slack},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:_KEY_LEN]


def save_bundle(bundle: CaptureBundle, path: Path) -> None:
    """Atomically write *bundle* as one ``.npz`` (arrays + JSON meta blob)."""
    blob = {
        "meta": bundle.meta,
        "tapes": [
            {
                "checkpoints": tape.checkpoints,
                "baseline": tape.baseline,
                "finish": tape.finish,
                "length": tape.length,
            }
            for tape in bundle.tapes
        ],
    }
    arrays = {
        "meta_json": np.frombuffer(json.dumps(blob).encode(), dtype=np.uint8)
    }
    for i, tape in enumerate(bundle.tapes):
        arrays[f"steps_{i}"] = tape.steps_array()
        arrays[f"events_{i}"] = tape.events_array()
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def identity_from_meta(meta: dict) -> tuple:
    """Reconstruct an artifact's capture identity from its embedded meta.

    Matches :func:`repro.sim.build.capture_identity` field for field, so
    consumers (the gc pass) can recognise an on-disk artifact regardless
    of the slack it was captured with.
    """
    return (
        tuple(meta["benchmarks"]),
        meta["l1_sets"],
        meta["l1_ways"],
        meta["l2_sets"],
        meta["l2_ways"],
        meta["llc_sets"],
        bool(meta["l1_next_line_prefetch"]),
        bool(meta["l2_stride_prefetch"]),
        int(meta["l2_prefetch_degree"]) if meta["l2_stride_prefetch"] else 0,
        int(meta["quota"]),
        int(meta["warmup"]),
        int(meta["master_seed"]),
        int(meta["chunk"]),
    )


def load_meta(path: Path | str) -> dict | None:
    """Just an artifact's meta block (no tapes); ``None`` on any damage."""
    try:
        with np.load(path, allow_pickle=False) as npz:
            blob = json.loads(bytes(npz["meta_json"]).decode())
            meta = blob["meta"]
    except Exception:
        # "Any damage" includes mid-file corruption, which surfaces as
        # BadZipFile/UnicodeDecodeError/... depending on which bytes hit.
        return None
    if meta.get("format") != CAPTURE_FORMAT:
        return None
    return meta


def load_bundle(path: Path | str) -> CaptureBundle | None:
    """Load an artifact back into a live bundle; ``None`` on any damage."""
    try:
        with np.load(path, allow_pickle=False) as npz:
            blob = json.loads(bytes(npz["meta_json"]).decode())
            meta = blob["meta"]
            if meta.get("format") != CAPTURE_FORMAT:
                return None
            tapes = []
            for i, rec in enumerate(blob["tapes"]):
                events = npz[f"events_{i}"]
                if events.dtype != EVENT_DTYPE:
                    return None
                tape = CoreTape()
                tape.steps = bytearray(npz[f"steps_{i}"].tobytes())
                tape.ev_step = events["step"].tolist()
                tape.ev_kind = events["kind"].tolist()
                tape.ev_addr = events["addr"].tolist()
                tape.ev_pc = events["pc"].tolist()
                tape.checkpoints = rec["checkpoints"]
                tape.baseline = rec["baseline"]
                tape.finish = rec["finish"]
                tape.length = rec["length"]
                tapes.append(tape)
    except Exception:
        # Same contract as load_meta: any damage reads as a miss.
        return None
    return CaptureBundle(meta, tapes)


class ReplayStore:
    """Capture artifacts under a shared-trace directory.

    ``stats`` counts real capture work (``captured``) separately from
    warm-store reuse (``reused``).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = {"captured": 0, "reused": 0}

    def path_for(self, key: str) -> Path:
        return self.root / f"replay-{key}.npz"

    def materialise(
        self,
        benchmarks: tuple[str, ...],
        config,
        quota: int,
        warmup: int,
        master_seed: int,
    ) -> dict:
        """Capture (or find) one artifact; returns its manifest entry.

        A fresh capture runs on the kernel :func:`repro.sim.multi.
        capture_kernel` resolves — the array-native pass when
        ``REPRO_CAPTURE_VEC`` is set (falling back to the scalar pass on
        any kernel failure; artifacts are byte-identical either way, so
        the fallback is invisible downstream).
        """
        from repro.cpu.capture import capture_workload, replay_slack
        from repro.sim.build import capture_identity

        identity = capture_identity(benchmarks, config, quota, warmup, master_seed)
        slack = replay_slack()
        key = replay_key(identity, slack)
        path = self.path_for(key)
        if path.is_file() and verify_artifact(path) is False:
            # Damage found before reuse: preserve the evidence out of the
            # live namespace and fall through to a fresh capture.
            quarantine(path, reason="replay checksum mismatch")
        if path.is_file():
            self.stats["reused"] += 1
        else:
            bundle = None
            from repro.cpu import capture_vec

            if capture_vec.capture_vec_enabled():
                try:
                    bundle = capture_vec.capture_workload_vec(
                        tuple(benchmarks), config, quota, warmup, master_seed, slack
                    )
                except Exception:
                    # The scalar pass produces the identical artifact, so
                    # a vec-kernel failure only costs the speedup.
                    bundle = None
            if bundle is None:
                bundle = capture_workload(
                    tuple(benchmarks), config, quota, warmup, master_seed, slack
                )
            save_bundle(bundle, path)
            write_checksum(path)
            faults.corrupt_artifact("replay", path, path.name)
            self.stats["captured"] += 1
        return {"identity": list(identity), "path": str(path)}


# -- per-process registry ------------------------------------------------------

#: Identity tuple -> artifact path, installed from a manifest.
_ACTIVE: dict[tuple, str] = {}
#: Path -> loaded bundle (LRU), so repeated installs/jobs reuse one load
#: (and share any live tape extensions within the process).  Bounded: a
#: loaded bundle expands its arrays into Python lists, so an unbounded
#: cache would grow a long-lived worker by one platform per sweep.
_BUNDLES: "OrderedDict[str, CaptureBundle | None]" = OrderedDict()
_BUNDLE_CACHE_LIMIT = 4

#: Monotonic per-process counter of artifact loads from disk; the parallel
#: runner ships per-task deltas back and aggregates them into
#: ``runner.stats`` — under sticky affinity routing a sweep should load
#: each artifact once per worker, not once per job.
REGISTRY_STATS = {"bundle_loads": 0}


def _freeze(identity) -> tuple:
    return (tuple(identity[0]),) + tuple(identity[1:])


def install_replay_manifest(entries: list[dict]) -> None:
    """Register every manifest artifact for :func:`active_replay_bundle`."""
    active: dict[tuple, str] = {}
    for entry in entries:
        try:
            active[_freeze(entry["identity"])] = entry["path"]
        except (KeyError, TypeError):
            continue
    _ACTIVE.clear()
    _ACTIVE.update(active)


def clear_replay_manifest() -> None:
    """Drop the registry (loaded bundles stay cached for a later install)."""
    _ACTIVE.clear()


def active_replay_bundle(
    benchmarks: tuple[str, ...], config, quota: int, warmup: int, master_seed: int
):
    """The registered capture bundle for one run identity, or ``None``.

    Loads the artifact on first use and caches it per path; an unreadable
    or mismatched file registers as a permanent miss, so the affected jobs
    simply run on the fused kernel.
    """
    if not _ACTIVE:
        return None
    from repro.sim.build import capture_identity

    identity = capture_identity(benchmarks, config, quota, warmup, master_seed)
    path = _ACTIVE.get(identity)
    if path is None:
        return None
    if path not in _BUNDLES:
        while len(_BUNDLES) >= _BUNDLE_CACHE_LIMIT:
            _BUNDLES.popitem(last=False)
        if verify_artifact(path) is False:
            # Checksum mismatch: a corrupt .npz may still *load* with
            # wrong tape data, so quarantine instead of trusting it.
            quarantine(path, reason="replay checksum mismatch")
            _BUNDLES[path] = None
        else:
            bundle = load_bundle(path)
            if bundle is None and os.path.isfile(path):
                # Structurally unreadable (truncated/damaged npz): the
                # next materialise should re-capture, not re-reuse it.
                quarantine(path, reason="replay unreadable")
            if bundle is not None:
                REGISTRY_STATS["bundle_loads"] += 1
                # Content address of the artifact: keys the worker-local
                # decode-plane cache in :mod:`repro.cpu.replay_vec`.
                bundle.content_key = Path(path).name
            _BUNDLES[path] = bundle
    else:
        _BUNDLES.move_to_end(path)
    return _BUNDLES[path]
