"""Persistent on-disk result store.

Each completed job is written as one JSON file under the store root,
``<root>/<key[:2]>/<key>.json``, where ``key`` is the job's stable
:meth:`~repro.runner.jobs.WorkloadJob.cache_key` (a SHA-256 over workload,
configuration, policy, budgets and master seed).  The two-level fan-out
keeps directories small for multi-thousand-run campaigns.

The store is the L2 cache of the experiment stack: the in-process
:class:`~repro.experiments.common.Runner` memo is L1, and this store makes
results survive *across invocations* — re-running a figure, or running a
later figure that shares runs with an earlier one, performs zero new
simulations against a warm store.

Writes are atomic (temp file + ``os.replace``), so concurrent workers and
interrupted runs can never leave a truncated entry behind; a corrupt or
unreadable entry is treated as a miss and overwritten on the next run.

Consumers that *aggregate* the store — the :mod:`repro.report` tournament
tables, ``traces gc`` — go through the typed query API
(:meth:`ResultStore.records` / :meth:`ResultStore.query`, yielding
:class:`StoredResult`) rather than walking the JSON layout themselves, so
the on-disk encoding stays a private detail of this module.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterator
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path


@dataclass(frozen=True)
class StoredResult:
    """One stored run, decoded: the job that produced it plus its payload.

    The job carries the full simulation identity (workload composition,
    complete :class:`~repro.sim.config.SystemConfig`, policy designation,
    budgets, master seed); the result payload stays in its raw dict form
    until :meth:`result` materialises it, so store scans that only filter
    on identity never pay result deserialisation.
    """

    key: str
    job: object  # Job; typed loosely to keep this module import-light
    payload: dict

    @property
    def kind(self) -> str:
        """``"workload"`` (multi-programmed run) or ``"alone"`` (baseline)."""
        return self.job.kind

    @cached_property
    def policy(self) -> str:
        """The policy identity label (``PolicySpec`` kwargs included)."""
        from repro.policies.spec import policy_key

        return policy_key(self.job.policy)

    @property
    def workload(self) -> str:
        """Workload name, or the benchmark name for an ``alone`` run."""
        job = self.job
        return job.workload_name if job.kind == "workload" else job.benchmark

    @property
    def benchmarks(self) -> tuple[str, ...]:
        job = self.job
        return job.benchmarks if job.kind == "workload" else (job.benchmark,)

    @property
    def seed(self) -> int:
        return self.job.master_seed

    @property
    def config(self):
        return self.job.config

    @property
    def cores(self) -> int:
        return self.job.config.num_cores

    def result(self):
        """The deserialised result record (``WorkloadResult``/``SingleRunResult``)."""
        return self.job.result_from_dict(self.payload["result"])


class ResultStore:
    """JSON-file-per-result persistent cache keyed by job cache keys."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored payload for *key*, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open(encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: dict) -> Path:
        """Atomically persist *payload* under *key*; returns the file path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- typed query API ---------------------------------------------------------

    def records(self) -> Iterator[StoredResult]:
        """Every decodable stored run, in stable (key-sorted) order.

        Entries whose schema version differs from the current encoding, or
        whose job payload no longer reconstructs (corruption, a removed
        job kind), are skipped — exactly the entries the execution path
        would treat as cache misses.
        """
        from repro.runner.jobs import SCHEMA_VERSION, job_from_dict

        for key in self.keys():
            payload = self.get(key)
            if not payload or payload.get("schema") != SCHEMA_VERSION:
                continue
            if payload.get("kind") == "failure" or "result" not in payload:
                # Persisted FailureRecords live at job keys too; they are
                # enumerable via :meth:`failures`, never as results.
                continue
            try:
                job = job_from_dict(payload["job"])
            except (KeyError, TypeError, ValueError):
                continue
            yield StoredResult(key=key, job=job, payload=payload)

    def failures(self) -> Iterator[dict]:
        """Every persisted failure record (quarantined jobs), key-sorted.

        Yields the raw ``failure`` dicts written by the supervised runner
        (``key``/``kind``/``attempts``/``error``), augmented with the
        job payload under ``"job"`` so reports can name the lost cell.
        A failure record is replaced by the real result as soon as a
        resumed run succeeds, so this view always reflects the *current*
        holes in the store.
        """
        from repro.runner.jobs import SCHEMA_VERSION

        for key in self.keys():
            payload = self.get(key)
            if (
                not payload
                or payload.get("schema") != SCHEMA_VERSION
                or payload.get("kind") != "failure"
            ):
                continue
            failure = dict(payload.get("failure") or {})
            failure.setdefault("key", key)
            failure["job"] = payload.get("job")
            yield failure

    def query(
        self,
        *,
        kind: str | None = None,
        policy: str | None = None,
        workload: str | None = None,
        seed: int | None = None,
        cores: int | None = None,
        config_name: str | None = None,
    ) -> Iterator[StoredResult]:
        """Stored runs matching every given filter (``None`` = any).

        ``policy`` matches the policy identity label (a registry name, or
        a :meth:`~repro.policies.spec.PolicySpec.key` string for
        parameterised policies); ``workload`` matches the workload name —
        the benchmark name for ``alone`` records.
        """
        for record in self.records():
            if kind is not None and record.kind != kind:
                continue
            if policy is not None and record.policy != policy:
                continue
            if workload is not None and record.workload != workload:
                continue
            if seed is not None and record.seed != seed:
                continue
            if cores is not None and record.cores != cores:
                continue
            if config_name is not None and record.config.name != config_name:
                continue
            yield record
