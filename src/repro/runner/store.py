"""Persistent on-disk result store.

Each completed job is written as one JSON file under the store root,
``<root>/<key[:2]>/<key>.json``, where ``key`` is the job's stable
:meth:`~repro.runner.jobs.WorkloadJob.cache_key` (a SHA-256 over workload,
configuration, policy, budgets and master seed).  The two-level fan-out
keeps directories small for multi-thousand-run campaigns.

The store is the L2 cache of the experiment stack: the in-process
:class:`~repro.experiments.common.Runner` memo is L1, and this store makes
results survive *across invocations* — re-running a figure, or running a
later figure that shares runs with an earlier one, performs zero new
simulations against a warm store.

Writes are atomic (temp file + ``os.replace``), so concurrent workers and
interrupted runs can never leave a truncated entry behind; a corrupt or
unreadable entry is treated as a miss and overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterator
from pathlib import Path


class ResultStore:
    """JSON-file-per-result persistent cache keyed by job cache keys."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored payload for *key*, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open(encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: dict) -> Path:
        """Atomically persist *payload* under *key*; returns the file path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
