"""repro — reproduction of ADAPT (Sridharan & Seznec, IPDPS 2016).

"Discrete Cache Insertion Policies for Shared Last Level Cache Management
on Large Multicores": Footprint-number monitoring plus discrete insertion
priorities for shared LLCs where the core count meets or exceeds the cache
associativity.

Public API tour
---------------
>>> from repro import SystemConfig, design_suite, run_workload, weighted_speedup
>>> config = SystemConfig.scaled(num_cores=16)
>>> workload = design_suite(16, num_workloads=1)[0]
>>> result = run_workload(workload, config, "adapt_bp32", quota=2000, warmup=500)
>>> len(result.ipcs)
16

Packages
--------
:mod:`repro.core`     — ADAPT: Footprint-number monitor, priority predictor,
                        the policy itself, hardware-cost model.
:mod:`repro.policies` — all baselines (LRU/DIP lineage, RRIP family,
                        TA-DRRIP, SHiP, EAF) and the bypass wrapper.
:mod:`repro.cache`    — set-associative caches, MSHRs, banks, hierarchy.
:mod:`repro.mem`      — row-hit/row-conflict DRAM, VPC arbiter.
:mod:`repro.cpu`      — behavioural cores, event-driven multicore engine.
:mod:`repro.trace`    — the 36 synthetic Table 4 benchmarks, Table 6 suites.
:mod:`repro.sim`      — configurations and runners.
:mod:`repro.runner`   — parallel job pool and persistent result store.
:mod:`repro.metrics`  — weighted speed-up and the other Table 7 metrics.
:mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import AdaptPolicy, FootprintSampler, InsertionPriorityPredictor, PriorityBucket
from repro.metrics import compute_all_metrics, weighted_speedup
from repro.policies import PAPER_POLICIES, available_policies, make_policy
from repro.runner import ParallelRunner, PolicySpec, ResultStore
from repro.sim import (
    AloneCache,
    SystemConfig,
    build_hierarchy,
    run_alone,
    run_workload,
)
from repro.trace import BENCHMARKS, Workload, design_suite

__version__ = "1.0.0"

__all__ = [
    "AdaptPolicy",
    "FootprintSampler",
    "InsertionPriorityPredictor",
    "PriorityBucket",
    "compute_all_metrics",
    "weighted_speedup",
    "PAPER_POLICIES",
    "available_policies",
    "make_policy",
    "ParallelRunner",
    "PolicySpec",
    "ResultStore",
    "AloneCache",
    "SystemConfig",
    "build_hierarchy",
    "run_alone",
    "run_workload",
    "BENCHMARKS",
    "Workload",
    "design_suite",
    "__version__",
]
