"""Per-application LLC occupancy analysis.

The mechanism behind every result in the paper is *capacity
appropriation*: which applications' lines actually occupy the shared LLC.
The cache tracks per-owner line counts; this module samples them over a
run and summarises who held how much — making the policies' behaviour
directly observable (e.g. under ADAPT_bp32 the Least-priority applications
hold almost nothing, under LRU the thrashers dominate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.engine import MulticoreEngine
from repro.policies.base import ReplacementPolicy
from repro.sim.build import build_hierarchy, build_sources
from repro.sim.config import SystemConfig
from repro.trace.workloads import Workload


@dataclass
class OccupancyProfile:
    """Average per-application share of LLC capacity over a run."""

    benchmarks: tuple[str, ...]
    #: core -> mean fraction of LLC blocks owned (samples averaged).
    mean_share: list[float]
    samples: int

    def by_app(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for name, share in zip(self.benchmarks, self.mean_share):
            out[name] = out.get(name, 0.0) + share
        return out

    def render(self) -> str:
        lines = ["== mean LLC occupancy share =="]
        order = sorted(
            range(len(self.benchmarks)), key=lambda i: -self.mean_share[i]
        )
        for i in order:
            bar = "#" * round(self.mean_share[i] * 60)
            lines.append(f"{self.benchmarks[i]:<8} {self.mean_share[i]:6.1%} {bar}")
        return "\n".join(lines)


def measure_occupancy(
    workload: Workload,
    config: SystemConfig,
    policy: str | ReplacementPolicy,
    *,
    quota: int = 8_000,
    warmup: int = 2_000,
    sample_every: int = 2_000,
    master_seed: int = 0,
) -> OccupancyProfile:
    """Run *workload* under *policy*, sampling LLC occupancy periodically.

    Sampling piggybacks on the engine loop via a counting trace-source
    wrapper, so no engine changes are needed.
    """
    if workload.cores != config.num_cores:
        config = config.with_cores(workload.cores)
    hierarchy = build_hierarchy(config, policy)
    sources = build_sources(workload, config, master_seed)

    llc = hierarchy.llc
    totals = [0.0] * workload.cores
    state = {"count": 0, "samples": 0}
    num_blocks = llc.num_blocks

    class SamplingSource:
        """Delegates to a real source; samples occupancy every N accesses."""

        def __init__(self, inner):
            self.inner = inner
            self.spec = inner.spec
            self.instructions_per_access = inner.instructions_per_access

        def next_access(self):
            state["count"] += 1
            if state["count"] % sample_every == 0:
                for core, owned in enumerate(llc.occupancy):
                    totals[core] += owned / num_blocks
                state["samples"] += 1
            return self.inner.next_access()

    wrapped = [SamplingSource(s) for s in sources]
    engine = MulticoreEngine(
        hierarchy,
        wrapped,
        quota_per_core=quota,
        interval_misses=config.effective_interval,
        warmup_accesses=warmup,
    )
    engine.run()
    samples = max(1, state["samples"])
    return OccupancyProfile(
        benchmarks=workload.benchmarks,
        mean_share=[t / samples for t in totals],
        samples=state["samples"],
    )
