"""The empirical memory-intensity classifier of Table 5.

============  ===========  ==================
FP-num        L2 MPKI      Memory intensity
============  ===========  ==================
< 16          < 1          Very Low (VL)
< 16          [1, 5)       Low (L)
< 16          > 5          Medium (M)
>= 16         < 5          Medium (M)
>= 16         [5, 25)      High (H)
>= 16         > 25         Very High (VH)
============  ===========  ==================

(The table's open boundaries leave the exact values 5 and 25 ambiguous; we
treat the intervals as half-open, [1,5) and [5,25), which reproduces every
row of Table 4.)
"""

from __future__ import annotations

from dataclasses import dataclass


def classify(footprint_number: float, l2_mpki: float) -> str:
    """Table 5: map (Footprint-number, L2-MPKI) to a class label."""
    if footprint_number < 16:
        if l2_mpki < 1:
            return "VL"
        if l2_mpki < 5:
            return "L"
        return "M"
    if l2_mpki < 5:
        return "M"
    if l2_mpki < 25:
        return "H"
    return "VH"


def is_thrashing(footprint_number: float) -> bool:
    """The paper's thrashing criterion: Footprint-number >= associativity."""
    return footprint_number >= 16


@dataclass(frozen=True)
class ClassifiedBenchmark:
    """One Table 4 row, as measured by the reproduction."""

    name: str
    fpn_all: float
    fpn_sampled: float
    l2_mpki: float
    measured_class: str
    paper_class: str

    @property
    def matches_paper(self) -> bool:
        return self.measured_class == self.paper_class

    def render(self) -> str:
        mark = "" if self.matches_paper else "  <- paper: " + self.paper_class
        return (
            f"{self.name:<7} Fpn(A)={self.fpn_all:6.2f} Fpn(S)={self.fpn_sampled:6.2f} "
            f"L2-MPKI={self.l2_mpki:6.2f}  {self.measured_class:<2}{mark}"
        )
