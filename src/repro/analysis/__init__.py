"""Analysis helpers: Table 5 classification, occupancy profiling."""

from repro.analysis.classification import ClassifiedBenchmark, classify, is_thrashing
from repro.analysis.occupancy import OccupancyProfile, measure_occupancy

__all__ = [
    "ClassifiedBenchmark",
    "classify",
    "is_thrashing",
    "OccupancyProfile",
    "measure_occupancy",
]
