"""Tournament reporting: aggregate the result store into ranked tables.

The subsystem has four pieces, modeled on instrumentation-infra's report
machinery but built on this repo's typed store query API:

* :mod:`repro.report.aggregate` — turn stored runs into measurement cells
  and ranked per-policy summaries (:func:`report_from_store`);
* :mod:`repro.report.stats` — deterministic (cluster) bootstrap
  confidence intervals for the handful-of-seeds regime;
* :mod:`repro.report.tables` — monospace renderings: ranked table,
  per-workload breakdown, head-to-head win matrix;
* :mod:`repro.report.bench` + :mod:`repro.report.regress` — the committed
  ``BENCH_tournament.json`` trajectory snapshot and the detector that
  diffs two snapshots and fails CI on significant movement.

The ``repro-experiments tournament`` driver fills the store this package
reads; ``repro-experiments report`` is the CLI front-end over all of it.
"""

from repro.report.aggregate import (
    DEFAULT_BASELINE,
    Cell,
    PolicySummary,
    TournamentData,
    TournamentReport,
    aggregate,
    gather,
    report_from_store,
)
from repro.report.bench import (
    SNAPSHOT_SCHEMA,
    build_snapshot,
    config_hash,
    load_snapshot,
    measure_kernel_throughput,
    write_snapshot,
)
from repro.report.regress import DEFAULT_THRESHOLD, Movement, RegressionReport, compare
from repro.report.stats import bootstrap_ci, cluster_bootstrap_ci
from repro.report.tables import render_report

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "SNAPSHOT_SCHEMA",
    "Cell",
    "Movement",
    "PolicySummary",
    "RegressionReport",
    "TournamentData",
    "TournamentReport",
    "aggregate",
    "bootstrap_ci",
    "build_snapshot",
    "cluster_bootstrap_ci",
    "compare",
    "config_hash",
    "gather",
    "load_snapshot",
    "measure_kernel_throughput",
    "render_report",
    "report_from_store",
    "write_snapshot",
]
