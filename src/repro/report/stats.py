"""Resampling statistics for the tournament report.

The tournament produces a small number of deterministic measurement cells
— one per (policy, workload, seed) — so the report quotes uncertainty with
percentile bootstrap confidence intervals rather than parametric formulas:
no normality assumption, works for the geometric means the paper's
metrics aggregate with, and stays honest for the handful-of-seeds regime.

Seeds are the natural resampling unit: workloads *within* one master seed
share their sampled composition, so treating every cell as independent
would understate the interval.  :func:`cluster_bootstrap_ci` therefore
resamples whole seed groups with replacement (the cluster bootstrap) and
only degenerates to per-cell resampling when a single group is supplied.

Everything is deterministic: the resampling RNG is seeded, so the same
store contents always produce the same intervals — which is what lets the
regression detector diff two report snapshots meaningfully.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.util.stats import geometric_mean

#: Default resample count: ample for 95% percentile intervals at report
#: granularity, negligible against the simulations that fed the store.
DEFAULT_RESAMPLES = 2000


def bootstrap_ci(
    values: Sequence[float],
    stat: Callable[[Sequence[float]], float] = geometric_mean,
    *,
    confidence: float = 0.95,
    n_resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap interval of ``stat`` over independent *values*."""
    return cluster_bootstrap_ci(
        [[v] for v in values],
        stat,
        confidence=confidence,
        n_resamples=n_resamples,
        seed=seed,
    )


def cluster_bootstrap_ci(
    groups: Sequence[Sequence[float]],
    stat: Callable[[Sequence[float]], float] = geometric_mean,
    *,
    confidence: float = 0.95,
    n_resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap interval of ``stat``, resampling whole *groups*.

    Each group is one cluster of correlated observations (in the report:
    every cell measured under one master seed).  A resample draws
    ``len(groups)`` clusters with replacement, concatenates them and
    applies ``stat``; the interval is the ``confidence`` percentile span
    of the resampled statistics.

    With one group the cluster bootstrap would be degenerate (every
    resample identical), so the single group's values are resampled
    individually instead.
    """
    groups = [list(g) for g in groups if len(g)]
    if not groups:
        raise ValueError("bootstrap over no observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if len(groups) == 1:
        groups = [[v] for v in groups[0]]
    point = stat([v for g in groups for v in g])
    if len(groups) == 1:  # a single observation: no resampling spread
        return (point, point)
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, len(groups), size=(n_resamples, len(groups)))
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        sample: list[float] = []
        for j in draws[i]:
            sample.extend(groups[j])
        stats[i] = stat(sample)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return (float(lo), float(hi))


def outside_interval(value: float, interval: tuple[float, float]) -> bool:
    """Whether *value* falls strictly outside a ``(lo, hi)`` interval."""
    lo, hi = interval
    return value < lo or value > hi
