"""Regression detection between two tournament snapshots.

``repro-experiments report --baseline BENCH_tournament.json`` diffs the
freshly aggregated store against a committed snapshot and exits non-zero
when a policy's headline metric moved *significantly* downward.  The
simulations are deterministic, so an unchanged tree reproduces the
baseline bit-for-bit and the detector stays silent; any movement is a real
behaviour change, and the significance test separates noise-scale drift
from movement worth failing CI over.

A movement in policy P's rel-WS geomean is **significant** when both:

* the relative change exceeds ``threshold`` (default 1%), and
* the baseline value falls outside the current run's seed-clustered
  bootstrap confidence interval.

Two snapshots are only *comparable* when their ``config_hash`` matches —
same policy roster, workload slots, platforms, seeds and budgets.  A
mismatch (someone reshaped the tournament without regenerating the
committed snapshot) is reported loudly but is not a regression: there is
nothing meaningful to diff, and the ``report`` command exits with its own
code (3) so CI fails until the snapshot is regenerated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.report.stats import outside_interval

#: Minimum relative movement of a rel-WS geomean considered significant.
DEFAULT_THRESHOLD = 0.01


@dataclass(frozen=True)
class Movement:
    """One policy's headline-metric change between two snapshots."""

    policy: str
    baseline_value: float
    current_value: float
    #: Current-run bootstrap CI the baseline value is tested against.
    current_ci: tuple[float, float]
    threshold: float

    @property
    def delta(self) -> float:
        return self.current_value - self.baseline_value

    @property
    def delta_rel(self) -> float:
        """Relative movement; signed infinity off a zero baseline value
        (a pathological snapshot), so any change from zero is flagged
        rather than crashing the report."""
        if self.baseline_value == 0:
            return 0.0 if self.delta == 0 else math.copysign(math.inf, self.delta)
        return self.delta / self.baseline_value

    @property
    def significant(self) -> bool:
        return abs(self.delta_rel) > self.threshold and outside_interval(
            self.baseline_value, self.current_ci
        )

    @property
    def regression(self) -> bool:
        return self.significant and self.delta < 0

    @property
    def improvement(self) -> bool:
        return self.significant and self.delta > 0


@dataclass
class RegressionReport:
    """The outcome of diffing a current snapshot against a baseline."""

    comparable: bool
    notes: list[str] = field(default_factory=list)
    movements: list[Movement] = field(default_factory=list)
    added_policies: list[str] = field(default_factory=list)
    removed_policies: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Movement]:
        return [m for m in self.movements if m.regression]

    @property
    def improvements(self) -> list[Movement]:
        return [m for m in self.movements if m.improvement]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"note: {note}")
        if not self.comparable:
            lines.append(
                "snapshots are NOT comparable (config hash mismatch) — "
                "no regression verdict; regenerate the baseline snapshot "
                "if the tournament shape changed intentionally"
            )
            return "\n".join(lines)
        flagged = sorted(
            (m for m in self.movements if m.significant),
            key=lambda m: m.delta_rel,
        )
        if not flagged:
            lines.append(
                f"no significant movement across {len(self.movements)} policies"
            )
        for m in flagged:
            verdict = "REGRESSION" if m.regression else "improvement"
            lo, hi = m.current_ci
            lines.append(
                f"{verdict}: {m.policy} rel WS {m.baseline_value:.4f} -> "
                f"{m.current_value:.4f} ({m.delta_rel * 100:+.2f}%, "
                f"baseline outside current CI [{lo:.4f}, {hi:.4f}])"
            )
        return "\n".join(lines)


def compare(
    current: dict, baseline: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> RegressionReport:
    """Diff two snapshot payloads (see :mod:`repro.report.bench` schema)."""
    report = RegressionReport(
        comparable=current.get("config_hash") == baseline.get("config_hash")
    )
    cur_policies = current.get("policies", {})
    base_policies = baseline.get("policies", {})
    report.added_policies = sorted(set(cur_policies) - set(base_policies))
    report.removed_policies = sorted(set(base_policies) - set(cur_policies))
    if report.added_policies:
        report.notes.append(f"new policies: {', '.join(report.added_policies)}")
    if report.removed_policies:
        report.notes.append(
            f"policies missing from current run: {', '.join(report.removed_policies)}"
        )
    if not report.comparable:
        return report
    for policy in sorted(set(cur_policies) & set(base_policies)):
        cur = cur_policies[policy]
        base = base_policies[policy]
        lo, hi = cur["rel_ws_ci"]
        report.movements.append(
            Movement(
                policy=policy,
                baseline_value=base["rel_ws_geomean"],
                current_value=cur["rel_ws_geomean"],
                current_ci=(lo, hi),
                threshold=threshold,
            )
        )
    return report
