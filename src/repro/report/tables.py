"""Text rendering of the tournament report.

Three views over one :class:`~repro.report.aggregate.TournamentReport`:

* the **ranked table** — one row per policy, best first, with the
  seed-clustered bootstrap confidence interval next to each geomean;
* the **per-workload breakdown** — rel-WS geomeans per (policy, workload
  slot), the view that shows *where* a policy earns its rank;
* the **head-to-head win matrix** — the share of common cells where the
  row policy beats the column policy (``-`` for pairs that share none).

All three are plain monospace tables in the style of the paper-figure
renderers, so ``repro-experiments report`` output diffs cleanly in CI
artifacts.
"""

from __future__ import annotations

from repro.report.aggregate import TournamentReport
from repro.util.stats import geometric_mean


def render_ranked(report: TournamentReport) -> str:
    """The headline ranking with confidence intervals."""
    data = report.data
    header = (
        f"== policy tournament: {len(data.cells)} cells "
        f"({len(data.policies)} policies x {len(data.workloads)} workload slots "
        f"x {len(data.seeds)} seeds), rel WS over {data.baseline} =="
    )
    lines = [
        header,
        "rank  policy        rel WS   95% CI             WS geomean  LLC MPKI   win%  cells",
    ]
    for rank, s in enumerate(report.summaries, start=1):
        lo, hi = s.rel_ws_ci
        win = f"{s.win_rate * 100:>5.1f}" if s.win_rate is not None else f"{'-':>5}"
        lines.append(
            f"{rank:>4}  {s.policy:<12} {s.rel_ws_geomean:>7.4f}  "
            f"[{lo:.4f}, {hi:.4f}]  {s.ws_geomean:>10.4f}  "
            f"{s.llc_mpki_mean:>8.2f}  {win}  {s.cells:>5}"
        )
    if data.real_cells:
        rest = len(data.cells) - data.real_cells
        lines.append(
            f"({data.real_cells} cells ran ingested real-workload traces"
            + (f"; the other {rest} are synthetic)" if rest else ")")
        )
    skipped = (
        data.skipped_parameterised + data.skipped_no_alone + data.skipped_no_baseline
    )
    if skipped:
        lines.append(
            f"(skipped {data.skipped_parameterised} parameterised, "
            f"{data.skipped_no_alone} without solo baselines, "
            f"{data.skipped_no_baseline} without a {data.baseline} partner)"
        )
    if data.failed_cells:
        lines.append(
            f"({data.failed_cells} quarantined cells are holes in this grid "
            "— re-execute with: repro-experiments tournament --resume)"
        )
    return "\n".join(lines)


def render_breakdown(report: TournamentReport) -> str:
    """Per-workload rel-WS geomeans (columns: workload slots, over seeds)."""
    data = report.data
    workloads = data.workloads
    lines = [
        "== per-workload rel WS geomean (over "
        f"{len(data.seeds)} seed{'s' if len(data.seeds) != 1 else ''}) =="
    ]
    name_width = max([len("policy")] + [len(p) for p in data.policies])
    col = max(9, max((len(w) for w in workloads), default=9))
    lines.append(
        " ".join([f"{'policy':<{name_width}}"] + [f"{w:>{col}}" for w in workloads])
    )
    ranked = [s.policy for s in report.summaries]
    per_cell: dict[tuple[str, str], list[float]] = {}
    for cell in data.cells:
        per_cell.setdefault((cell.policy, cell.workload), []).append(cell.rel_ws)
    for policy in ranked:
        row = [f"{policy:<{name_width}}"]
        for workload in workloads:
            values = per_cell.get((policy, workload))
            row.append(f"{geometric_mean(values):>{col}.4f}" if values else f"{'-':>{col}}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_win_matrix(report: TournamentReport) -> str:
    """Head-to-head shares: row policy's win % against each column policy."""
    policies = [s.policy for s in report.summaries]
    lines = ["== head-to-head win % (row beats column) =="]
    name_width = max([len("policy")] + [len(p) for p in policies])
    col = max(7, max((len(p) for p in policies), default=7))
    lines.append(
        " ".join([f"{'policy':<{name_width}}"] + [f"{p:>{col}}" for p in policies])
    )
    for a in policies:
        row = [f"{a:<{name_width}}"]
        for b in policies:
            share = None if a == b else report.win_matrix[a][b]
            row.append(
                f"{'-':>{col}}" if share is None else f"{share * 100:>{col}.1f}"
            )
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_report(report: TournamentReport) -> str:
    """The full ``repro-experiments report`` text output."""
    return "\n\n".join(
        [render_ranked(report), render_breakdown(report), render_win_matrix(report)]
    )
