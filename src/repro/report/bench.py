"""The committed ``BENCH_tournament.json`` performance-trajectory snapshot.

Every ``repro-experiments report`` run can serialise its aggregated view
into one JSON snapshot.  The snapshot is the repo's in-tree perf/accuracy
trajectory: committed at the repo root, regenerated when tournament
behaviour intentionally changes (like the golden fixtures), and diffed by
the regression detector (:mod:`repro.report.regress`) in nightly CI.

Snapshot schema (``schema`` bumps on incompatible change)::

    {
      "schema": 1,
      "run_id": "tournament-<config_hash[:12]>-<cells>c",
      "generated_utc": "2026-08-07T12:00:00Z",     # informational
      "config_hash": "<sha256>",   # over every aggregated cell identity
      "baseline": "tadrrip",
      "seeds": [0, 1], "cores": [4], "workload_slots": [...],
      "cells": 52,
      "policies": {
        "<name>": {"rank": 1, "cells": 4, "rel_ws_geomean": ...,
                    "rel_ws_ci": [lo, hi], "ws_geomean": ...,
                    "llc_mpki_mean": ...,
                    "win_rate": ...}   # null: no head-to-head data
      },
      "kernel": {"hot_loop_accesses_per_second": ..., "accesses": ...}
    }

``config_hash`` covers exactly the run identities that fed the numbers —
policy roster, workload slots, platforms, seeds, budgets — so two
snapshots are comparable iff their hashes match; metric values and the
machine-dependent ``kernel`` section are deliberately *not* hashed.  The
``kernel`` section mirrors ``benchmarks/bench_kernel_throughput.py``'s
headline ``hot_loop`` scenario (fast-kernel accesses/second), giving the
trajectory a speed axis next to the accuracy axis.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from repro.report.aggregate import TournamentReport

#: Bump when the snapshot encoding changes incompatibly.
SNAPSHOT_SCHEMA = 1

#: Schema of the companion ``BENCH_kernels.json`` snapshot (the kernel
#: throughput trajectory; written by ``benchmarks/bench_capture_throughput.py``).
KERNEL_SNAPSHOT_SCHEMA = 1

#: Measured accesses for the kernel-throughput probe — matches the
#: bench's ``BASE_QUOTA`` so the two numbers are directly comparable.
KERNEL_PROBE_QUOTA = 40_000


def config_hash(report: TournamentReport) -> str:
    """SHA-256 over every aggregated cell identity (see module docstring)."""
    blob = json.dumps(
        {"baseline": report.data.baseline, "identities": report.data.identities},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def measure_kernel_throughput(repeats: int = 2) -> dict:
    """Fast-kernel accesses/second on the bench's ``hot_loop`` scenario.

    One core running the L1-resident ``calc`` application — the scenario
    ``bench_kernel_throughput.py`` uses as its headline kernel-dispatch
    cost.  Best-of-*repeats* wall-clock, exactly like the bench.
    """
    from repro.cpu.engine import MulticoreEngine
    from repro.sim.build import build_hierarchy, build_sources
    from repro.sim.config import SystemConfig
    from repro.trace.workloads import Workload

    config = SystemConfig.scaled(16).with_cores(1)
    workload = Workload("hot", ("calc",))
    best = float("inf")
    accesses = 0
    for _ in range(repeats):
        hierarchy = build_hierarchy(config, "tadrrip")
        sources = build_sources(workload, config)
        engine = MulticoreEngine(hierarchy, sources, quota_per_core=KERNEL_PROBE_QUOTA)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        accesses = sum(core.accesses for core in engine.cores)
        best = min(best, elapsed / accesses)
    return {
        "scenario": "hot_loop",
        "hot_loop_accesses_per_second": 1.0 / best,
        "accesses": accesses,
    }


def build_snapshot(
    report: TournamentReport, *, kernel: dict | None = None
) -> dict:
    """The JSON-safe ``BENCH_tournament.json`` payload for *report*."""
    data = report.data
    policies = {}
    for rank, s in enumerate(report.summaries, start=1):
        policies[s.policy] = {
            "rank": rank,
            "cells": s.cells,
            "rel_ws_geomean": s.rel_ws_geomean,
            "rel_ws_ci": list(s.rel_ws_ci),
            "ws_geomean": s.ws_geomean,
            "llc_mpki_mean": s.llc_mpki_mean,
            "win_rate": s.win_rate,
        }
    digest = config_hash(report)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "run_id": f"tournament-{digest[:12]}-{len(data.cells)}c",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config_hash": digest,
        "baseline": data.baseline,
        "seeds": data.seeds,
        "cores": sorted({c.cores for c in data.cells}),
        "workload_slots": data.workloads,
        "cells": len(data.cells),
        "policies": policies,
        "kernel": kernel,
    }


def write_snapshot(snapshot: dict, path: str | Path) -> Path:
    """Pretty-print *snapshot* to *path* (newline-terminated, sorted keys)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot, validating the schema version."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{path}: snapshot schema {payload.get('schema')!r} "
            f"(this build reads {SNAPSHOT_SCHEMA})"
        )
    return payload


def kernel_config_hash(identity: dict) -> str:
    """SHA-256 over the scenario identities feeding ``BENCH_kernels.json``.

    *identity* holds exactly what makes two kernel snapshots comparable —
    mixes, budgets, policy roster, replay slack — never the measured
    throughput or the backend, which are machine properties.
    """
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def build_kernel_snapshot(identity: dict, scenarios: dict, *, backend: str) -> dict:
    """The JSON-safe ``BENCH_kernels.json`` payload.

    Companion to :func:`build_snapshot`: where ``BENCH_tournament.json``
    tracks the *accuracy* trajectory, this tracks the *kernel-throughput*
    trajectory (accesses/second per kernel tier, capture scalar-vs-vec
    speedup, barrier-vs-pipelined sweep wall-clock).  ``backend`` records
    which vec backend produced the numbers ("numba" on CI nightlies,
    "numpy" where the JIT extra is absent) so readers never compare
    across tiers by accident.
    """
    digest = kernel_config_hash(identity)
    return {
        "schema": KERNEL_SNAPSHOT_SCHEMA,
        "run_id": f"kernels-{digest[:12]}-{backend}",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config_hash": digest,
        "identity": identity,
        "backend": backend,
        "scenarios": scenarios,
    }


def load_kernel_snapshot(path: str | Path) -> dict:
    """Read a ``BENCH_kernels.json`` snapshot, validating the schema."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != KERNEL_SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{path}: kernel snapshot schema {payload.get('schema')!r} "
            f"(this build reads {KERNEL_SNAPSHOT_SCHEMA})"
        )
    return payload
