"""Aggregate the result store into per-policy tournament statistics.

The tournament driver fills the persistent store with one
:class:`~repro.sim.results.WorkloadResult` per (policy, workload, seed)
plus the single-application ``IPC_alone`` baselines the throughput metrics
need.  This module turns those raw records into ranked statistics:

* one :class:`Cell` per (policy, workload, seed) — the weighted speed-up
  against the solo baselines, its ratio over the baseline policy on the
  same workload (the paper's y-axis), and the mean LLC MPKI;
* one :class:`PolicySummary` per policy — geometric means over its cells
  with a seed-clustered bootstrap confidence interval
  (:mod:`repro.report.stats`);
* a head-to-head win matrix — for every policy pair, the share of common
  cells where the row policy beats the column policy, or ``None`` when
  the pair shares no cells (rendered ``-``, excluded from win rates — a
  genuine 50% tie and "never met" must stay distinguishable).

Everything is read through the store's typed query API
(:meth:`~repro.runner.store.ResultStore.query`); this module has no
knowledge of the on-disk JSON layout.  Records that cannot be aggregated —
parameterised :class:`~repro.policies.spec.PolicySpec` sweeps from the
ablation figures, runs whose solo baselines or baseline-policy partner
were never simulated — are counted and skipped, so a store shared with
figure campaigns still reports cleanly on its tournament subset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.metrics.throughput import weighted_speedup
from repro.report.stats import cluster_bootstrap_ci
from repro.runner.store import ResultStore, StoredResult
from repro.util.stats import arithmetic_mean, geometric_mean

#: The reference everything is normalised against — the paper's baseline.
DEFAULT_BASELINE = "tadrrip"


@dataclass(frozen=True)
class Cell:
    """One measured (policy, workload, seed) tournament entry."""

    policy: str
    workload: str
    config_name: str
    cores: int
    seed: int
    #: Weighted speed-up over the solo-execution baselines.
    ws: float
    #: ``ws`` normalised to the baseline policy on the same workload/seed.
    rel_ws: float
    #: Mean LLC misses per kilo-instruction across the workload's cores.
    llc_mpki: float

    def group_key(self) -> tuple[str, str, int]:
        """The comparison group: same workload, platform and seed."""
        return (self.workload, self.config_name, self.seed)


@dataclass
class TournamentData:
    """Every aggregatable cell in a store, plus what had to be skipped."""

    baseline: str
    cells: list[Cell] = field(default_factory=list)
    #: Stable identity strings of every aggregated run (policy, workload,
    #: platform, seed, budgets) — the input to the snapshot config hash.
    identities: list[str] = field(default_factory=list)
    skipped_parameterised: int = 0
    skipped_no_alone: int = 0
    skipped_no_baseline: int = 0
    #: Cells whose workload ran at least one ingested real-trace target
    #: (``tgt:`` benchmark names; see :mod:`repro.targets`).
    real_cells: int = 0
    #: Jobs the supervised runner quarantined (persisted failure records)
    #: — holes in the grid, re-executed by ``tournament --resume``.
    failed_cells: int = 0

    @property
    def policies(self) -> list[str]:
        return sorted({c.policy for c in self.cells})

    @property
    def seeds(self) -> list[int]:
        return sorted({c.seed for c in self.cells})

    @property
    def workloads(self) -> list[str]:
        return sorted({c.workload for c in self.cells})


@dataclass(frozen=True)
class PolicySummary:
    """One ranked row of the tournament table."""

    policy: str
    cells: int
    rel_ws_geomean: float
    rel_ws_ci: tuple[float, float]
    ws_geomean: float
    llc_mpki_mean: float
    #: Mean head-to-head score against every other policy (ties count
    #: half); pairs with no common cells are excluded, ``None`` when the
    #: policy shares cells with no other policy at all.
    win_rate: float | None


@dataclass
class TournamentReport:
    """The aggregated store: ranked summaries plus the full win matrix."""

    data: TournamentData
    summaries: list[PolicySummary]  # ranked best-first by rel_ws_geomean
    win_matrix: dict[str, dict[str, float | None]]

    def summary_for(self, policy: str) -> PolicySummary | None:
        for summary in self.summaries:
            if summary.policy == policy:
                return summary
        return None


def _config_identity(config) -> str:
    """A canonical string for one platform (name alone can alias)."""
    return json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))


def _alone_ipcs(store: ResultStore) -> dict[tuple[str, int, str], tuple[int, float]]:
    """``(benchmark, seed, solo-platform) -> (quota, IPC_alone)`` lookup.

    When a benchmark was measured more than once (different budgets, a
    monitored Table 4 characterisation run), the highest-quota
    unmonitored run wins — monitors are passive so the IPC matches, but
    preferring the plain run keeps the choice canonical.
    """
    alone: dict[tuple[str, int, str], tuple[int, float]] = {}
    ranked: dict[tuple[str, int, str], tuple[int, int]] = {}
    for record in store.query(kind="alone"):
        job = record.job
        key = (job.benchmark, job.master_seed, _config_identity(job.config))
        rank = (0 if job.monitor else 1, job.quota)
        if key in ranked and ranked[key] >= rank:
            continue
        ranked[key] = rank
        alone[key] = (job.quota, record.result().ipc)
    return alone


def _workload_ws(record: StoredResult, alone) -> tuple[float, float] | None:
    """(weighted speed-up, mean LLC MPKI) for one workload record."""
    job = record.job
    solo = _config_identity(job.config.with_cores(1))
    baselines = []
    for benchmark in job.benchmarks:
        entry = alone.get((benchmark, job.master_seed, solo))
        if entry is None:
            return None
        baselines.append(entry[1])
    result = record.result()
    return (
        weighted_speedup(result.ipcs, baselines),
        arithmetic_mean(result.llc_mpkis),
    )


def gather(store: ResultStore, baseline: str = DEFAULT_BASELINE) -> TournamentData:
    """Collect every tournament-shaped cell from *store*.

    A cell needs three things: a plain (non-parameterised) policy name, a
    solo baseline for each of its benchmarks under the same platform and
    seed, and a baseline-policy run of the same workload to normalise
    against.  Records missing any of them are counted per reason.
    """
    data = TournamentData(baseline=baseline)
    data.failed_cells = sum(1 for _ in store.failures())
    alone = _alone_ipcs(store)
    # (workload, platform, seed) -> policy -> (record, ws, mpki)
    groups: dict[tuple, dict[str, tuple[StoredResult, float, float]]] = {}
    for record in store.query(kind="workload"):
        if not isinstance(record.job.policy, str):
            data.skipped_parameterised += 1
            continue
        measured = _workload_ws(record, alone)
        if measured is None:
            data.skipped_no_alone += 1
            continue
        key = (record.workload, record.config.name, record.seed)
        groups.setdefault(key, {})[record.policy] = (record, *measured)
    for (workload, config_name, seed), by_policy in sorted(groups.items()):
        base = by_policy.get(baseline)
        if base is None:
            data.skipped_no_baseline += len(by_policy)
            continue
        base_ws = base[1]
        for policy, (record, ws, mpki) in sorted(by_policy.items()):
            job = record.job
            if any(b.startswith("tgt:") for b in job.benchmarks):
                data.real_cells += 1
            data.cells.append(
                Cell(
                    policy=policy,
                    workload=workload,
                    config_name=config_name,
                    cores=record.cores,
                    seed=seed,
                    ws=ws,
                    rel_ws=ws / base_ws,
                    llc_mpki=mpki,
                )
            )
            data.identities.append(
                f"{policy}|{workload}|{config_name}|{seed}"
                f"|q{job.quota}|w{job.warmup}"
            )
    data.identities.sort()
    return data


def _win_matrix(data: TournamentData) -> dict[str, dict[str, float | None]]:
    """Pairwise head-to-head scores over common (workload, seed) cells;
    ``None`` for pairs that never met in the same group."""
    by_group: dict[tuple, dict[str, float]] = {}
    for cell in data.cells:
        by_group.setdefault(cell.group_key(), {})[cell.policy] = cell.ws
    policies = data.policies
    scores = {a: dict.fromkeys(policies, 0.0) for a in policies}
    counts = {a: dict.fromkeys(policies, 0) for a in policies}
    for group in by_group.values():
        present = sorted(group)
        for i, a in enumerate(present):
            for b in present[i + 1 :]:
                counts[a][b] += 1
                counts[b][a] += 1
                if group[a] > group[b]:
                    scores[a][b] += 1.0
                elif group[b] > group[a]:
                    scores[b][a] += 1.0
                else:
                    scores[a][b] += 0.5
                    scores[b][a] += 0.5
    return {
        a: {
            b: (scores[a][b] / counts[a][b]) if counts[a][b] else None
            for b in policies
            if b != a
        }
        for a in policies
    }


def aggregate(
    data: TournamentData,
    *,
    confidence: float = 0.95,
    n_resamples: int | None = None,
) -> TournamentReport:
    """Rank the gathered cells into per-policy summaries + win matrix."""
    from repro.report.stats import DEFAULT_RESAMPLES

    n_resamples = DEFAULT_RESAMPLES if n_resamples is None else n_resamples
    win_matrix = _win_matrix(data)
    summaries = []
    for policy in data.policies:
        cells = [c for c in data.cells if c.policy == policy]
        by_seed: dict[int, list[float]] = {}
        for cell in cells:
            by_seed.setdefault(cell.seed, []).append(cell.rel_ws)
        ci = cluster_bootstrap_ci(
            [by_seed[s] for s in sorted(by_seed)],
            confidence=confidence,
            n_resamples=n_resamples,
        )
        met = [v for v in win_matrix.get(policy, {}).values() if v is not None]
        summaries.append(
            PolicySummary(
                policy=policy,
                cells=len(cells),
                rel_ws_geomean=geometric_mean([c.rel_ws for c in cells]),
                rel_ws_ci=ci,
                ws_geomean=geometric_mean([c.ws for c in cells]),
                llc_mpki_mean=arithmetic_mean([c.llc_mpki for c in cells]),
                win_rate=arithmetic_mean(met) if met else None,
            )
        )
    summaries.sort(key=lambda s: (-s.rel_ws_geomean, s.policy))
    return TournamentReport(data=data, summaries=summaries, win_matrix=win_matrix)


def report_from_store(
    store: ResultStore,
    *,
    baseline: str = DEFAULT_BASELINE,
    confidence: float = 0.95,
    n_resamples: int | None = None,
) -> TournamentReport:
    """Gather + aggregate in one call (the ``report`` command entry)."""
    return aggregate(
        gather(store, baseline), confidence=confidence, n_resamples=n_resamples
    )
