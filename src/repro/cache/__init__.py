"""Cache substrate: set-associative caches, MSHRs, banks, and the hierarchy.

This package implements the memory-side hardware the paper's evaluation
platform provides: per-core L1/L2, a shared banked LLC with a pluggable
replacement policy (see :mod:`repro.policies`), write-back buffers, MSHRs
and the three-level :class:`~repro.cache.hierarchy.CacheHierarchy` that
routes accesses, fills and write-backs between them.
"""

from repro.cache.banks import BankedLatencyModel
from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.hierarchy import AccessOutcome, CacheHierarchy
from repro.cache.mshr import Mshr
from repro.cache.prefetch import StridePrefetcher
from repro.cache.stats import CacheStats
from repro.cache.writeback import WriteBackBuffer

__all__ = [
    "AccessResult",
    "AccessOutcome",
    "BankedLatencyModel",
    "CacheHierarchy",
    "CacheStats",
    "Mshr",
    "SetAssociativeCache",
    "StridePrefetcher",
    "WriteBackBuffer",
]
