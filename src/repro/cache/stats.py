"""Per-cache, per-core access statistics.

Every cache keeps one :class:`CacheStats`.  Counters are split by core and
by demand/non-demand so the experiment harness can compute per-application
MPKI (demand misses per kilo-instruction), bypass ratios and writeback
traffic without re-instrumenting the simulator.
"""

from __future__ import annotations


class CacheStats:
    """Counter bundle for one cache shared by ``num_cores`` cores."""

    __slots__ = (
        "num_cores",
        "demand_hits",
        "demand_misses",
        "other_hits",
        "other_misses",
        "bypasses",
        "evictions",
        "dirty_evictions",
        "fills",
        "writeback_arrivals",
    )

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self.demand_hits = [0] * num_cores
        self.demand_misses = [0] * num_cores
        self.other_hits = [0] * num_cores
        self.other_misses = [0] * num_cores
        self.bypasses = [0] * num_cores
        self.evictions = [0] * num_cores
        self.dirty_evictions = [0] * num_cores
        self.fills = [0] * num_cores
        self.writeback_arrivals = [0] * num_cores

    # -- aggregates ---------------------------------------------------------

    def hits(self, core_id: int | None = None) -> int:
        if core_id is None:
            return sum(self.demand_hits) + sum(self.other_hits)
        return self.demand_hits[core_id] + self.other_hits[core_id]

    def misses(self, core_id: int | None = None) -> int:
        if core_id is None:
            return sum(self.demand_misses) + sum(self.other_misses)
        return self.demand_misses[core_id] + self.other_misses[core_id]

    def accesses(self, core_id: int | None = None) -> int:
        return self.hits(core_id) + self.misses(core_id)

    def demand_accesses(self, core_id: int | None = None) -> int:
        if core_id is None:
            return sum(self.demand_hits) + sum(self.demand_misses)
        return self.demand_hits[core_id] + self.demand_misses[core_id]

    def miss_rate(self, core_id: int | None = None) -> float:
        accesses = self.demand_accesses(core_id)
        if accesses == 0:
            return 0.0
        misses = (
            sum(self.demand_misses) if core_id is None else self.demand_misses[core_id]
        )
        return misses / accesses

    def reset(self) -> None:
        for field in (
            self.demand_hits,
            self.demand_misses,
            self.other_hits,
            self.other_misses,
            self.bypasses,
            self.evictions,
            self.dirty_evictions,
            self.fills,
            self.writeback_arrivals,
        ):
            for i in range(self.num_cores):
                field[i] = 0

    def snapshot(self) -> dict[str, list[int]]:
        """A plain-dict copy, convenient for result records and asserts."""
        return {
            "demand_hits": list(self.demand_hits),
            "demand_misses": list(self.demand_misses),
            "other_hits": list(self.other_hits),
            "other_misses": list(self.other_misses),
            "bypasses": list(self.bypasses),
            "evictions": list(self.evictions),
            "dirty_evictions": list(self.dirty_evictions),
            "fills": list(self.fills),
            "writeback_arrivals": list(self.writeback_arrivals),
        }
