"""Three-level non-inclusive write-back cache hierarchy.

Mirrors the baseline of Table 3: per-core L1D (with optional next-line
prefetch), per-core unified L2 (DRRIP in the paper), and a shared, banked
LLC running the policy under study, backed by the row-hit/row-conflict
DRAM model.  A VPC arbiter schedules L2 miss requests into the LLC and
write-back buffers shape eviction traffic.

Content operations (lookups, allocations, evictions) are exact; timing is
behavioural: each access returns the number of cycles until its data is
available, including bank conflicts, arbiter throttling and DRAM row
state.  Write-backs are fire-and-forget for the core but occupy banks and
write-back-buffer slots, so heavy eviction traffic degrades co-runners.

Allocation happens at access time (the standard trace-simulator
convention), so a "fill" is implicit in the miss path of each level and
the returned victim is written back immediately.
"""

from __future__ import annotations

from repro.cache.banks import BankedLatencyModel
from repro.cache.cache import SetAssociativeCache
from repro.cache.mshr import Mshr
from repro.cache.prefetch import StridePrefetcher
from repro.cache.writeback import WriteBackBuffer
from repro.mem.arbiter import VpcArbiter
from repro.mem.dram import DramModel


class AccessOutcome:
    """Timing and classification of one core memory access."""

    __slots__ = ("latency", "l1_hit", "l2_hit", "llc_hit", "llc_demand_miss")

    def __init__(
        self,
        latency: float,
        l1_hit: bool,
        l2_hit: bool,
        llc_hit: bool,
        llc_demand_miss: bool,
    ) -> None:
        self.latency = latency
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit
        self.llc_hit = llc_hit
        self.llc_demand_miss = llc_demand_miss


class CacheHierarchy:
    """Per-core L1/L2 plus shared LLC and DRAM, with behavioural timing."""

    __slots__ = (
        "num_cores",
        "l1s",
        "l2s",
        "llc",
        "llc_banks",
        "dram",
        "arbiter",
        "l1_latency",
        "l2_latency",
        "llc_mshr",
        "l2_wb_buffers",
        "llc_wb_buffer",
        "l1_next_line_prefetch",
        "l2_prefetchers",
        "prefetches_issued",
    )

    def __init__(
        self,
        l1s: list[SetAssociativeCache],
        l2s: list[SetAssociativeCache],
        llc: SetAssociativeCache,
        llc_banks: BankedLatencyModel,
        dram: DramModel,
        arbiter: VpcArbiter,
        *,
        l1_latency: float = 3.0,
        l2_latency: float = 14.0,
        llc_mshr: Mshr | None = None,
        l2_wb_buffers: list[WriteBackBuffer] | None = None,
        llc_wb_buffer: WriteBackBuffer | None = None,
        l1_next_line_prefetch: bool = False,
        l2_prefetchers: list[StridePrefetcher] | None = None,
    ) -> None:
        if len(l1s) != len(l2s):
            raise ValueError("need one L1 and one L2 per core")
        self.num_cores = len(l1s)
        self.l1s = l1s
        self.l2s = l2s
        self.llc = llc
        self.llc_banks = llc_banks
        self.dram = dram
        self.arbiter = arbiter
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.llc_mshr = llc_mshr
        self.l2_wb_buffers = l2_wb_buffers
        self.llc_wb_buffer = llc_wb_buffer
        self.l1_next_line_prefetch = l1_next_line_prefetch
        self.l2_prefetchers = l2_prefetchers
        self.prefetches_issued = 0

    # -- write-back helpers ---------------------------------------------------

    def _writeback_to_dram(self, block_addr: int, now: float) -> None:
        start = now
        if self.llc_wb_buffer is not None:
            start = self.llc_wb_buffer.admit(now)
        self.dram.write(block_addr, start)

    def _writeback_to_llc(self, core_id: int, block_addr: int, now: float) -> None:
        """A dirty L2 victim arrives at the LLC (non-demand write)."""
        start = now
        if self.l2_wb_buffers is not None:
            start = self.l2_wb_buffers[core_id].admit(now)
        result = self.llc.access(core_id, block_addr, 0, True, False)
        self.llc_banks.access(block_addr, start)
        if result.bypassed:
            # The policy refused allocation; the dirty data must still land
            # somewhere, so it streams through to memory.
            self._writeback_to_dram(block_addr, start)
        elif result.victim_dirty:
            self._writeback_to_dram(result.victim_addr, start)

    def _writeback_to_l2(self, core_id: int, block_addr: int, now: float) -> None:
        """A dirty L1 victim arrives at the private L2."""
        result = self.l2s[core_id].access(0, block_addr, 0, True, False)
        if result.victim_dirty:
            self._writeback_to_llc(core_id, result.victim_addr, now)
        elif result.bypassed:  # pragma: no cover - L2 policies never bypass
            self._writeback_to_llc(core_id, block_addr, now)

    # -- fetch path -------------------------------------------------------------

    def _fetch_below_l1(
        self, core_id: int, block_addr: int, pc: int, now: float, is_demand: bool
    ) -> tuple[float, bool, bool, bool]:
        """L2 and below; returns (completion_time, l2_hit, llc_hit, llc_demand_miss)."""
        t_l2 = now + self.l1_latency
        r2 = self.l2s[core_id].access(0, block_addr, pc, False, is_demand)
        if r2.hit:
            return t_l2 + self.l2_latency, True, False, False
        if r2.victim_dirty:
            self._writeback_to_llc(core_id, r2.victim_addr, t_l2)

        if is_demand and self.l2_prefetchers is not None:
            # The paper's future-work configuration: a stride prefetcher
            # trains on L2 demand misses and fills the private L2 with
            # non-demand traffic (which neither promotes LLC recency nor
            # trains ADAPT's monitor — footnote 4 semantics).
            for pf_addr in self.l2_prefetchers[core_id].train(pc, block_addr):
                if pf_addr >= 0 and not self.l2s[core_id].probe(pf_addr):
                    self.prefetches_issued += 1
                    self._fetch_below_l1(core_id, pf_addr, pc, now, False)

        # L2 miss: request travels through the VPC arbiter to an LLC bank.
        t_req = self.arbiter.admit(core_id, t_l2 + self.l2_latency)
        r3 = self.llc.access(core_id, block_addr, pc, False, is_demand)
        t_bank = self.llc_banks.access(block_addr, t_req)
        if r3.hit:
            return t_bank, False, True, False
        if r3.victim_dirty:
            self._writeback_to_dram(r3.victim_addr, t_bank)

        # LLC miss: fill from DRAM (whether or not the line was allocated —
        # a bypassed fill still goes up to the private L2).
        t_dram = t_bank
        if self.llc_mshr is not None:
            merged = self.llc_mshr.lookup(block_addr, t_bank)
            if merged is not None:
                return merged, False, False, is_demand
            t_dram = self.llc_mshr.reserve(block_addr, t_bank)
        done = self.dram.read(block_addr, t_dram)
        if self.llc_mshr is not None:
            self.llc_mshr.complete_at(block_addr, done)
        return done, False, False, is_demand

    def access(
        self, core_id: int, block_addr: int, pc: int, is_write: bool, now: float
    ) -> AccessOutcome:
        """One demand access from *core_id*; returns its timing outcome."""
        r1 = self.l1s[core_id].access(0, block_addr, pc, is_write, True)
        if r1.hit:
            return AccessOutcome(self.l1_latency, True, False, False, False)
        if r1.victim_dirty:
            self._writeback_to_l2(core_id, r1.victim_addr, now)

        done, l2_hit, llc_hit, llc_demand_miss = self._fetch_below_l1(
            core_id, block_addr, pc, now, True
        )

        if self.l1_next_line_prefetch:
            self._prefetch_next_line(core_id, block_addr + 1, pc, now)

        return AccessOutcome(done - now, False, l2_hit, llc_hit, llc_demand_miss)

    def _prefetch_next_line(
        self, core_id: int, block_addr: int, pc: int, now: float
    ) -> None:
        """Next-line prefetch into L1 (Table 3); non-demand all the way down.

        Prefetches never stall the core; they do consume bank and DRAM time
        and, per the paper's footnote 4, do not update replacement recency.
        """
        l1 = self.l1s[core_id]
        if l1.probe(block_addr):
            return
        self.prefetches_issued += 1
        r1 = l1.access(0, block_addr, pc, False, False)
        if r1.victim_dirty:
            self._writeback_to_l2(core_id, r1.victim_addr, now)
        self._fetch_below_l1(core_id, block_addr, pc, now, False)

    # -- stats plumbing -----------------------------------------------------------

    def llc_demand_misses(self, core_id: int) -> int:
        return self.llc.stats.demand_misses[core_id]

    def total_llc_demand_misses(self) -> int:
        return sum(self.llc.stats.demand_misses)

    def l2_demand_misses(self, core_id: int) -> int:
        return self.l2s[core_id].stats.demand_misses[0]

    def describe(self) -> str:
        l1 = self.l1s[0]
        l2 = self.l2s[0]
        return (
            f"{self.num_cores} cores | L1 {l1.num_sets}x{l1.ways} | "
            f"L2 {l2.num_sets}x{l2.ways} | LLC {self.llc.num_sets}x{self.llc.ways} "
            f"({self.llc.policy.describe()})"
        )
