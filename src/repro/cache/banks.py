"""Banked-access latency model for the shared LLC.

The paper's LLC is "organized into 4 banks" with bank conflicts modelled
but a fixed latency for all banks.  We reproduce exactly that: every access
maps to a bank (XOR-permutation of the block address so power-of-two
strides spread out), each bank can start one access per ``occupancy``
cycles, and every access then takes the fixed ``latency``.

Requests that find their bank busy queue behind it — this is where
inter-application bandwidth interference at the LLC shows up.
"""

from __future__ import annotations

from repro.util.bitops import ilog2, xor_bank_index


class BankedLatencyModel:
    """Fixed-latency, conflict-modelled bank array."""

    __slots__ = ("num_banks", "latency", "occupancy", "_free_at", "conflicts", "accesses")

    def __init__(self, num_banks: int, latency: float, occupancy: float = 4.0) -> None:
        ilog2(num_banks)  # validates power of two
        if latency < 0 or occupancy <= 0:
            raise ValueError("latency must be >= 0 and occupancy > 0")
        self.num_banks = num_banks
        self.latency = latency
        self.occupancy = occupancy
        self._free_at = [0.0] * num_banks
        self.conflicts = 0
        self.accesses = 0

    def bank_of(self, block_addr: int) -> int:
        return xor_bank_index(block_addr, self.num_banks)

    def access(self, block_addr: int, now: float) -> float:
        """Issue an access; return its completion time.

        Completion = (start after any bank conflict) + fixed latency.
        """
        bank = self.bank_of(block_addr)
        start = self._free_at[bank]
        if start > now:
            self.conflicts += 1
        else:
            start = now
        self._free_at[bank] = start + self.occupancy
        self.accesses += 1
        return start + self.latency

    def conflict_rate(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0
