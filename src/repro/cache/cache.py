"""Set-associative write-back cache with pluggable replacement policy.

The cache stores *architectural* line state (block address, dirty bit,
owner core, reused bit); all replacement state lives in the policy (see
:mod:`repro.policies.base`).  Allocation happens at access time, the usual
convention for trace-driven cache simulators: a miss immediately installs
the line (unless the policy bypasses) and reports the victim so the caller
can issue the write-back.

Performance note (profiled, per the HPC guides: measure first): at
associativity 16 a C-level ``list.index`` scan beats NumPy fancy indexing
per access by ~4x, so the hot path is plain Python lists.
"""

from __future__ import annotations

from repro.cache.stats import CacheStats
from repro.policies.base import BYPASS, ReplacementPolicy
from repro.util.bitops import ilog2


class AccessResult:
    """Outcome of one cache access.

    Attributes
    ----------
    hit:
        Whether the lookup hit.
    bypassed:
        True when the policy declined to allocate on a miss.
    victim_addr:
        Block address of the evicted line, or ``-1`` when no valid line was
        displaced (hit, bypass, or fill into an invalid way).
    victim_dirty:
        Whether the evicted line was dirty (caller must write it back).
    """

    __slots__ = ("hit", "bypassed", "victim_addr", "victim_dirty")

    def __init__(self, hit: bool, bypassed: bool, victim_addr: int, victim_dirty: bool):
        self.hit = hit
        self.bypassed = bypassed
        self.victim_addr = victim_addr
        self.victim_dirty = victim_dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccessResult(hit={self.hit}, bypassed={self.bypassed}, "
            f"victim_addr={self.victim_addr}, victim_dirty={self.victim_dirty})"
        )


#: Reusable results for the two state-free outcomes (hot-path allocation
#: avoidance; these instances are immutable by convention).
_HIT = AccessResult(True, False, -1, False)
_BYPASS = AccessResult(False, True, -1, False)


class SetAssociativeCache:
    """A single cache level shared by ``num_cores`` cores."""

    __slots__ = (
        "name",
        "num_sets",
        "ways",
        "set_mask",
        "num_cores",
        "policy",
        "addrs",
        "dirty",
        "owner",
        "reused",
        "occupancy",
        "stats",
    )

    def __init__(
        self,
        name: str,
        num_sets: int,
        ways: int,
        policy: ReplacementPolicy,
        num_cores: int = 1,
    ) -> None:
        ilog2(num_sets)  # validate power-of-two geometry
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.set_mask = num_sets - 1
        self.num_cores = num_cores
        self.policy = policy
        policy.bind(num_sets, ways, num_cores)
        self.addrs: list[list[int]] = [[-1] * ways for _ in range(num_sets)]
        self.dirty: list[list[bool]] = [[False] * ways for _ in range(num_sets)]
        self.owner: list[list[int]] = [[0] * ways for _ in range(num_sets)]
        self.reused: list[list[bool]] = [[False] * ways for _ in range(num_sets)]
        self.occupancy = [0] * num_cores
        self.stats = CacheStats(num_cores)

    # -- capacity helpers ----------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.num_sets * self.ways

    def capacity_bytes(self, block_size: int = 64) -> int:
        return self.num_blocks * block_size

    def set_index(self, block_addr: int) -> int:
        return block_addr & self.set_mask

    # -- non-mutating probe ---------------------------------------------------

    def probe(self, block_addr: int) -> bool:
        """True when *block_addr* is currently resident (no state change)."""
        return block_addr in self.addrs[block_addr & self.set_mask]

    def resident_blocks(self, set_idx: int) -> list[int]:
        """Valid block addresses in one set (testing/analysis helper)."""
        return [a for a in self.addrs[set_idx] if a != -1]

    # -- the access path -------------------------------------------------------

    def access(
        self,
        core_id: int,
        block_addr: int,
        pc: int = 0,
        is_write: bool = False,
        is_demand: bool = True,
    ) -> AccessResult:
        """Perform one access; allocate on miss unless the policy bypasses."""
        s = block_addr & self.set_mask
        row = self.addrs[s]
        stats = self.stats
        try:
            way = row.index(block_addr)
        except ValueError:
            way = -1

        if is_write and not is_demand:
            stats.writeback_arrivals[core_id] += 1

        if way >= 0:
            if is_demand:
                stats.demand_hits[core_id] += 1
                self.reused[s][way] = True
            else:
                stats.other_hits[core_id] += 1
            if is_write:
                self.dirty[s][way] = True
            self.policy.on_hit(s, way, core_id, is_demand, block_addr)
            return _HIT

        # Miss path.
        if is_demand:
            stats.demand_misses[core_id] += 1
        else:
            stats.other_misses[core_id] += 1
        policy = self.policy
        policy.on_miss(s, core_id, is_demand)
        decision = policy.decide_insertion(s, core_id, pc, block_addr, is_demand)
        if decision is BYPASS:
            stats.bypasses[core_id] += 1
            return _BYPASS

        victim_addr = -1
        victim_dirty = False
        try:
            way = row.index(-1)
        except ValueError:
            way = policy.victim(s, core_id)
            victim_addr = row[way]
            victim_dirty = self.dirty[s][way]
            victim_owner = self.owner[s][way]
            policy.on_evict(s, way, victim_owner, victim_addr, self.reused[s][way])
            stats.evictions[victim_owner] += 1
            if victim_dirty:
                stats.dirty_evictions[victim_owner] += 1
            self.occupancy[victim_owner] -= 1

        row[way] = block_addr
        self.dirty[s][way] = is_write
        self.owner[s][way] = core_id
        self.reused[s][way] = False
        self.occupancy[core_id] += 1
        stats.fills[core_id] += 1
        policy.on_fill(s, way, decision, core_id, pc, block_addr, is_demand)
        return AccessResult(False, False, victim_addr, victim_dirty)

    # -- maintenance -----------------------------------------------------------

    def invalidate(self, block_addr: int) -> bool:
        """Drop *block_addr* if resident; returns whether it was present.

        No write-back is performed — callers that care about dirty data
        must probe first.  Used by tests and by flush-style experiments.
        """
        s = block_addr & self.set_mask
        row = self.addrs[s]
        try:
            way = row.index(block_addr)
        except ValueError:
            return False
        owner = self.owner[s][way]
        self.policy.on_evict(s, way, owner, block_addr, self.reused[s][way])
        self.occupancy[owner] -= 1
        row[way] = -1
        self.dirty[s][way] = False
        self.reused[s][way] = False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SetAssociativeCache {self.name}: {self.num_sets}x{self.ways} "
            f"policy={self.policy.describe()}>"
        )
