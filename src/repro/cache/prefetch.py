"""PC-indexed stride prefetcher for the private L2 (the paper's future work).

Section 7: "commercial processors typically employ mid-level cache (L2)
prefetching.  We intend to study large multi-core shared caches with L2
prefetching in the future."  This module provides that study's hardware: a
classic reference-prediction-table stride prefetcher (Chen & Baer style).

Each table entry tracks, per load PC: the last block address, the last
observed stride, and a 2-bit confidence counter.  A miss whose stride
matches the recorded one builds confidence; at or above the threshold the
prefetcher emits ``degree`` prefetch addresses down the predicted stream.

Prefetches issued from here are *non-demand* accesses end to end: they do
not update replacement recency at the shared LLC (paper footnote 4), they
are not sampled by ADAPT's Footprint-number monitor, and they never stall
the requesting core.
"""

from __future__ import annotations


class StrideEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr: int) -> None:
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Reference prediction table keyed by the load PC."""

    def __init__(
        self,
        table_entries: int = 64,
        degree: int = 2,
        confidence_threshold: int = 2,
        max_confidence: int = 3,
    ) -> None:
        if table_entries < 1 or degree < 1:
            raise ValueError("table_entries and degree must be positive")
        self.table_entries = table_entries
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.max_confidence = max_confidence
        self._table: dict[int, StrideEntry] = {}
        self.trained = 0
        self.issued = 0

    def train(self, pc: int, block_addr: int) -> list[int]:
        """Observe one L2 demand miss; return prefetch addresses to issue."""
        self.trained += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # FIFO-ish eviction: drop the oldest insertion.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = StrideEntry(block_addr)
            return []

        stride = block_addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            if entry.confidence < self.max_confidence:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = block_addr

        if entry.confidence >= self.confidence_threshold and entry.stride != 0:
            out = [
                block_addr + entry.stride * i for i in range(1, self.degree + 1)
            ]
            self.issued += len(out)
            return out
        return []

    def coverage(self) -> float:
        """Issued prefetches per training event (diagnostic)."""
        return self.issued / self.trained if self.trained else 0.0
