"""Write-back buffer capacity model.

Table 3 gives each cache a bounded write-back buffer ("32-entry
retire-at-24" at the L2, "128-entry retire-at-96" at the LLC): evicted
dirty lines park in the buffer and retire to the next level in the
background once the occupancy crosses the retire threshold.  The effect on
the core is *usually* nothing — except when the buffer is full, in which
case the eviction (and therefore the miss that triggered it) stalls.

The model keeps a heap of retire times.  Writes are admitted immediately
while slots exist; a full buffer delays admission until the earliest
pending write retires.
"""

from __future__ import annotations

import heapq


class WriteBackBuffer:
    """Bounded buffer of dirty evictions draining to the next level."""

    __slots__ = (
        "entries",
        "retire_at",
        "drain_cycles",
        "_retires",
        "_last_retire",
        "stalls",
        "admitted",
    )

    def __init__(self, entries: int, retire_at: int, drain_cycles: float) -> None:
        if entries < 1:
            raise ValueError("write-back buffer needs at least one entry")
        if not 0 < retire_at <= entries:
            raise ValueError("retire threshold must be in (0, entries]")
        self.entries = entries
        self.retire_at = retire_at
        self.drain_cycles = drain_cycles
        self._retires: list[float] = []
        self._last_retire = 0.0
        self.stalls = 0
        self.admitted = 0

    def occupancy(self, now: float) -> int:
        heap = self._retires
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return len(heap)

    def admit(self, now: float) -> float:
        """Admit one dirty eviction; return the time admission happens.

        While the buffer sits at or beyond its retire threshold, retires are
        serialised one ``drain_cycles`` apart behind the last scheduled one,
        mirroring the retire-at-N drain behaviour in Table 3.  Below the
        threshold a write simply retires ``drain_cycles`` after admission.
        """
        start = now
        if self.occupancy(now) >= self.entries:
            start = self._retires[0]
            self.stalls += 1
            self.occupancy(start)
        if len(self._retires) >= self.retire_at:
            retire = max(self._last_retire, start) + self.drain_cycles
        else:
            retire = start + self.drain_cycles
        self._last_retire = retire
        heapq.heappush(self._retires, retire)
        self.admitted += 1
        return start
