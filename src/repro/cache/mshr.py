"""Miss Status Holding Register (MSHR) capacity model.

The baseline system (Table 3) gives the L2 a 32-entry MSHR and the LLC a
256-entry MSHR.  In this behavioural simulator an MSHR does two things:

* it *merges* concurrent misses to the same block (secondary misses do not
  issue a second fill request), and
* it *back-pressures* when full: a new miss cannot start until the oldest
  outstanding one completes.

Both are modelled against simulated time: callers reserve an entry with the
current time and the expected completion time; ``reserve`` returns the
(possibly delayed) start time.
"""

from __future__ import annotations

import heapq


class Mshr:
    """Bounded set of outstanding misses, indexed by block address."""

    __slots__ = ("entries", "_completions", "_by_block", "merged", "stalls")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("MSHR needs at least one entry")
        self.entries = entries
        self._completions: list[float] = []  # min-heap of completion times
        self._by_block: dict[int, float] = {}  # block -> completion time
        self.merged = 0
        self.stalls = 0

    def outstanding(self, now: float) -> int:
        """Number of misses still in flight at time *now*."""
        self._expire(now)
        return len(self._completions)

    def _expire(self, now: float) -> None:
        heap = self._completions
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if not heap:
            self._by_block.clear()
        elif len(self._by_block) > 2 * len(heap):
            horizon = now
            self._by_block = {
                blk: t for blk, t in self._by_block.items() if t > horizon
            }

    def lookup(self, block_addr: int, now: float) -> float | None:
        """Completion time of an in-flight miss to *block_addr*, if any.

        A hit here is a *secondary* miss: the request merges into the
        existing entry and completes when the primary fill returns.
        """
        done = self._by_block.get(block_addr)
        if done is not None and done > now:
            self.merged += 1
            return done
        return None

    def reserve(self, block_addr: int, now: float) -> float:
        """Reserve an entry for a new (primary) miss.

        Returns the time the miss may actually start: *now* if an entry is
        free, otherwise the completion time of the oldest outstanding miss
        (the structural stall the paper's fixed-size MSHRs impose).
        """
        self._expire(now)
        start = now
        if len(self._completions) >= self.entries:
            start = self._completions[0]
            self.stalls += 1
            self._expire(start)
        return start

    def complete_at(self, block_addr: int, completion: float) -> None:
        """Record that the miss reserved for *block_addr* finishes then."""
        heapq.heappush(self._completions, completion)
        self._by_block[block_addr] = completion
