"""Table 7: ADAPT's gain under all five multi-core metrics.

Paper: ADAPT improves on TA-DRRIP under weighted speed-up, the harmonic
mean of normalized IPCs and the G/H/A means of raw IPCs at every core
count (4.7-8.4% at 16+ cores).
"""

from repro.experiments.table7 import run_table7


def test_table7_other_metrics(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_table7(runner, core_counts=(4, 8, 16, 20, 24)),
        rounds=1,
        iterations=1,
    )
    save_result("table7_metrics", result.render())

    # Shape: at 16+ cores (the paper's pivotal regime) every metric
    # should show a positive gain.
    for metric, per_cores in result.gains.items():
        for cores in (16, 20, 24):
            assert per_cores[cores] > -0.5, (
                f"{metric} at {cores}-core regressed: {per_cores[cores]:+.2f}%"
            )
