"""Figure 1: forcing BRRIP on thrashing applications beats learned TA-DRRIP.

Paper: TA-DRRIP(forced) achieves a large normalized-WS gain over default
TA-DRRIP, insensitive to the duelling-set count (SD=64 vs SD=128);
thrashing applications' own MPKI barely moves (cactusADM excepted) while
non-thrashing applications' MPKI falls by up to ~72% (art).
"""

from repro.experiments.fig1 import run_fig1
from repro.trace.benchmarks import BENCHMARKS


def test_fig1_forced_brrip(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: run_fig1(runner), rounds=1, iterations=1)
    save_result("fig1_forced_brrip", result.render())

    forced = result.bars["TA-DRRIP(forced)"]
    sd64 = result.bars["TA-DRRIP(SD=64)"]
    sd128 = result.bars["TA-DRRIP(SD=128)"]
    assert forced > sd64 and forced > sd128, "forcing BRRIP must win"
    # Duelling-set count insensitivity (paper: bars 1 and 2 are equal).
    assert abs(sd64 - sd128) < 0.02
    # Non-thrashing applications gain much more than thrashing ones lose.
    others = result.other_rows()
    assert others, "non-thrashing apps must appear in the suite"
    assert max(others.values()) > 10.0, "some friendly app should save >10% MPKI"


def test_fig1_thrashing_set_matches_paper():
    """The Fig. 1b x-axis: exactly the eleven Fpn>=16 applications."""
    expected = {
        "apsi", "astar", "cact", "gap", "gob", "gzip",
        "lbm", "libq", "milc", "wrf", "wup",
    }
    ours = {n for n, s in BENCHMARKS.items() if s.thrashing} - {"STRM"}
    assert ours == expected
