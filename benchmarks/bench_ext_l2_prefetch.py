"""Extension: the paper's future-work study — L2 stride prefetching.

Section 7: "commercial processors typically employ mid-level cache (L2)
prefetching.  We intend to study large multi-core shared caches with L2
prefetching in the future."  This bench performs that study: ADAPT's gain
over TA-DRRIP with and without a PC-indexed stride prefetcher at each
private L2 (prefetch traffic is non-demand at the LLC, so the
Footprint-number monitor and replacement recency ignore it, per footnote 4).
"""

from dataclasses import replace

from repro.experiments.common import geometric_mean_gain


def _gain(runner, config, workloads):
    ratios = []
    for workload in workloads:
        base = runner.weighted_speedup(workload, "tadrrip", config)
        ratios.append(runner.weighted_speedup(workload, "adapt_bp32", config) / base)
    return geometric_mean_gain(ratios)


def test_ext_l2_prefetch(benchmark, runner, save_result):
    def study():
        workloads = runner.settings.suite(16)[:3]
        plain = runner.config.with_cores(16)
        prefetching = replace(
            plain, l2_stride_prefetch=True, name=f"{plain.name}-l2pf"
        )
        return {
            "no L2 prefetch": _gain(runner, plain, workloads),
            "L2 stride prefetch": _gain(runner, prefetching, workloads),
        }

    gains = benchmark.pedantic(study, rounds=1, iterations=1)
    text = "== extension: ADAPT gain over TA-DRRIP, with/without L2 prefetching ==\n"
    text += "\n".join(f"{label:<22} {gain:+6.2f}%" for label, gain in gains.items())
    save_result("ext_l2_prefetch", text)

    # The claim under test is qualitative: ADAPT's mechanism must survive
    # the presence of prefetch traffic (which it never samples).
    assert gains["L2 stride prefetch"] > -1.5
