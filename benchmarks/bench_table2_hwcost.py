"""Table 2: hardware storage cost of each policy at 24 applications.

Recomputed from the cost model and checked against the paper's stated
values: TA-DRRIP 48B, EAF-RRIP 256KB, SHiP ~65.9KB, ADAPT ~24KB.
"""

from repro.core.hwcost import adapt_cost, eaf_cost, ship_cost, tadrrip_cost
from repro.experiments.tables import render_table2


def test_table2_hwcost(benchmark, save_result):
    text = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    save_result("table2_hwcost", text)

    assert tadrrip_cost(24).bytes == 48
    assert eaf_cost(256 * 1024).kilobytes == 256
    assert abs(ship_cost(256 * 1024, sampled_line_fraction=0.125).kilobytes - 65.875) < 0.5
    adapt = adapt_cost(24)
    # Section 3.3: 8200 bits (~1KB) per application, ~24KB at N=24.
    assert adapt.bits == 8200 * 24
    assert 23.5 < adapt.kilobytes < 24.5
