"""Table 6: the workload suites and their composition constraints."""

from repro.experiments.tables import render_table6
from repro.trace.workloads import TABLE6, design_suite, validate_workload


def test_table6_workload_design(benchmark, save_result):
    text = benchmark.pedantic(render_table6, rounds=1, iterations=1)
    save_result("table6_workloads", text)

    # Regenerate every suite at the paper's full counts and validate the
    # composition rule of each workload.
    for cores, spec in TABLE6.items():
        suite = design_suite(cores)
        assert len(suite) == spec.num_workloads
        for workload in suite:
            validate_workload(workload)
