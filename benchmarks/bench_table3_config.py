"""Table 3: the simulated platform, paper values beside the scaled run."""

from repro.experiments.tables import render_table3
from repro.sim.config import SystemConfig


def test_table3_configuration(benchmark, runner, save_result):
    text = benchmark.pedantic(
        lambda: render_table3(runner.config), rounds=1, iterations=1
    )
    save_result("table3_config", text)

    paper = SystemConfig.paper(16)
    assert paper.llc.capacity_bytes() == 16 * 1024 * 1024
    assert paper.llc.ways == 16
    assert paper.effective_interval == 1_000_000
    # The scaled config preserves the pivotal ratios.
    scaled = runner.config
    assert scaled.llc.ways == 16
    assert scaled.effective_interval % scaled.llc.num_blocks == 0
