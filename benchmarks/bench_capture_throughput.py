"""Capture-pass and sweep-pipeline throughput benchmarks.

Companion to ``bench_kernel_throughput.py``: where that file tracks the
*replay*-side kernels, this one tracks the two halves this PR makes fast —
the private-level **capture pass** (the per-sweep serial prefix every
replay amortises) and the **capture→replay pipeline** that schedules it.

Two scenarios:

* ``capture`` — one four-core capture of the low-intensity sweep mix on
  both capture kernels: the scalar reference pass and the array-native
  pass (:mod:`repro.cpu.capture_vec`).  The artifact-identity assert
  inside the measurement is the hard gate; the throughput ratio is
  recorded on whichever backend resolves (numba JIT or the pure-numpy
  fallback) and enforced at >=2x only for the numba build — the numpy
  tier exists for bit-identity, not speed.
* ``sweep_pipelined`` — a two-sweep, sixteen-job batch end to end through
  ``ParallelRunner`` (two workers), pipelined against the
  ``REPRO_NO_PIPELINE`` two-phase barrier.  Both arms run the full
  array-native stack (vec capture + vec replay) on a fresh artifact root,
  so the only variable is the scheduling: dependency-edged submission and
  sticky affinity against the capture barrier.  The results-equality
  assert inside the measurement is the hard gate; the wall-clock ratio is
  gated loosely (pipelining must not *cost* anything) because the win on
  a two-worker pool is overlap, not raw speed.

The summary test renders the table, enforces the gates, and writes the
committed ``BENCH_kernels.json`` trajectory snapshot (schema in
:mod:`repro.report.bench`), recording accesses/second per kernel tier
with an honest ``backend`` field.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.cpu import capture_vec, replay_vec
from repro.cpu.capture import capture_workload, replay_slack
from repro.experiments.common import scale_factor
from repro.report.bench import (
    build_kernel_snapshot,
    measure_kernel_throughput,
    write_snapshot,
)
from repro.runner import ParallelRunner, WorkloadJob, replaystore
from repro.sim.config import SystemConfig
from repro.trace.workloads import Workload

#: Matches ``bench_kernel_throughput.BASE_QUOTA`` so the recorded
#: accesses/second are directly comparable across the two files.
BASE_QUOTA = 40_000

#: The swept policies — same roster as the ``llc_sweep`` scenarios.
SWEEP_POLICIES = ("lru", "srrip", "brrip", "drrip", "tadrrip", "ship", "eaf", "dip")

#: The capture scenario's mix: four low-intensity (VL/L) applications, the
#: shape where the private levels absorb most traffic and the capture pass
#: is the sweep's serial prefix.
CAPTURE_MIX = ("gcc", "calc", "craf", "deal")

#: Two sweeps for the pipeline scenario, so the barrier arm genuinely
#: stalls sweep B's replays behind sweep A's capture and the pipelined arm
#: genuinely overlaps them.
PIPELINE_MIXES = {
    "pipe_low": ("gcc", "calc", "craf", "deal"),
    "pipe_mixed": ("mcf", "libq", "gcc", "calc"),
}

_SPEEDUPS: dict[str, dict[str, float]] = {}

_REPO_ROOT = Path(__file__).resolve().parent.parent


# -- the capture scenario ------------------------------------------------------


def _capture_setup():
    # Pinned budget (like ``llc_sweep``): the scenario measures the
    # steady-state per-access cost of the capture pass, and scaling it
    # down would re-weight the one-off source-construction cost.
    quota = BASE_QUOTA // 2
    warmup = quota // 4
    config = SystemConfig.scaled(16).with_cores(len(CAPTURE_MIX))
    return config, quota, warmup


def _measure_capture() -> dict[str, float]:
    """One scalar capture against one array-native capture, byte-checked.

    ``warm_backend`` runs outside the timed region, mirroring the parallel
    runner's capture-phase warm-up, so a numba build measures steady-state
    JIT throughput rather than compilation.
    """
    config, quota, warmup = _capture_setup()
    backend = capture_vec.warm_backend()

    start = time.perf_counter()
    scalar = capture_workload(CAPTURE_MIX, config, quota, warmup, 0)
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    vec = capture_vec.capture_workload_vec(CAPTURE_MIX, config, quota, warmup, 0)
    vec_elapsed = time.perf_counter() - start

    assert vec.meta == scalar.meta, "vec capture meta diverged"
    for core, (ta, tb) in enumerate(zip(scalar.tapes, vec.tapes)):
        assert bytes(tb.steps) == bytes(ta.steps), f"core {core}: steps diverged"
        assert tb.events_array().tobytes() == ta.events_array().tobytes(), (
            f"core {core}: events diverged"
        )
        assert tb.checkpoints == ta.checkpoints, f"core {core}: checkpoints diverged"

    accesses = sum(tape.length for tape in scalar.tapes)
    return {
        "accesses_per_second_fast": accesses / vec_elapsed,
        "accesses_per_second_generic": accesses / scalar_elapsed,
        "kernel_speedup": scalar_elapsed / vec_elapsed,
        "accesses": accesses,
        "backend": backend,
    }


def _measure_capture_recording() -> dict[str, float]:
    """One capture measurement, folded into the best-of-rounds summary."""
    info = _measure_capture()
    best = _SPEEDUPS.get("capture")
    if best is None or info["kernel_speedup"] > best["kernel_speedup"]:
        _SPEEDUPS["capture"] = info
    return info


def test_capture_throughput(benchmark):
    """Array-native vs scalar capture of one four-core mix (per backend)."""
    benchmark.pedantic(_measure_capture_recording, rounds=3, iterations=1)
    info = _SPEEDUPS["capture"]
    benchmark.extra_info.update(info)
    assert info["accesses"] > 0


# -- the pipelined-sweep scenario ----------------------------------------------


def _pipeline_setup():
    # End-to-end wall clock, so the budget scales with ``REPRO_SCALE``
    # like the experiment budgets (smoke runs stay fast).
    scale = max(0.1, min(scale_factor(), 1.0))
    quota = max(1_000, round(BASE_QUOTA * scale) // 2)
    warmup = quota // 4
    config = SystemConfig.scaled(16)
    return config, quota, warmup


def _pipeline_jobs():
    config, quota, warmup = _pipeline_setup()
    return [
        WorkloadJob.for_workload(
            Workload(name, mix),
            config.with_cores(len(mix)),
            policy,
            quota=quota,
            warmup=warmup,
            master_seed=0,
        )
        for name, mix in PIPELINE_MIXES.items()
        for policy in SWEEP_POLICIES
    ]


def _run_arm(jobs, env: dict[str, str]):
    """One timed batch under *env*, on cold caches and a fresh artifact root.

    A fresh ``ParallelRunner`` without a result store keeps its traces and
    replay artifacts in a runner-lifetime temporary directory, so neither
    arm inherits the other's captures; the process-local decode caches are
    cleared for the same reason (the pool workers start cold anyway).
    """
    saved = {key: os.environ.get(key) for key in env}
    os.environ.update(env)
    replay_vec._PLANE_CACHE.clear()
    replaystore._BUNDLES.clear()
    replaystore.clear_replay_manifest()
    try:
        start = time.perf_counter()
        with ParallelRunner(jobs=2) as runner:
            results = runner.run(jobs)
        elapsed = time.perf_counter() - start
        assert runner.stats["failed"] == 0, runner.last_failures
        return results, elapsed
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _measure_sweep_pipelined() -> dict[str, float]:
    """Two 8-policy sweeps through the pool: barrier vs pipelined."""
    _, quota, _ = _pipeline_setup()
    jobs = _pipeline_jobs()
    backend = capture_vec.warm_backend()
    stack = {"REPRO_CAPTURE_VEC": "1", "REPRO_REPLAY_VEC": "1"}

    barrier, barrier_elapsed = _run_arm(jobs, {**stack, "REPRO_NO_PIPELINE": "1"})
    pipelined, pipelined_elapsed = _run_arm(jobs, {**stack, "REPRO_NO_PIPELINE": "0"})
    assert pipelined == barrier, "pipelined sweep diverged from barrier sweep"

    cores = sum(len(mix) for mix in PIPELINE_MIXES.values())
    accesses = quota * cores * len(SWEEP_POLICIES)
    return {
        "accesses_per_second_fast": accesses / pipelined_elapsed,
        "accesses_per_second_generic": accesses / barrier_elapsed,
        "kernel_speedup": barrier_elapsed / pipelined_elapsed,
        "accesses": accesses,
        "policies": len(SWEEP_POLICIES),
        "sweeps": len(PIPELINE_MIXES),
        "backend": backend,
    }


def _measure_sweep_pipelined_recording() -> dict[str, float]:
    info = _measure_sweep_pipelined()
    best = _SPEEDUPS.get("sweep_pipelined")
    if best is None or info["kernel_speedup"] > best["kernel_speedup"]:
        _SPEEDUPS["sweep_pipelined"] = info
    return info


def test_sweep_pipelined_throughput(benchmark):
    """Barrier-free pipelining vs the two-phase barrier, end to end.

    The bit-identity assert inside the measurement is the hard gate; the
    wall-clock ratio is recorded on both backends and enforced (loosely —
    pipelining must never cost) only for the numba build in the summary.
    """
    benchmark.pedantic(_measure_sweep_pipelined_recording, rounds=2, iterations=1)
    info = _SPEEDUPS["sweep_pipelined"]
    benchmark.extra_info.update(info)
    assert info["accesses"] > 0


# -- gates and the committed snapshot ------------------------------------------


def _ensure_scenario(name: str) -> None:
    """Measure *name* directly if its benchmark test was deselected."""
    if name in _SPEEDUPS:
        return
    if name == "capture":
        _SPEEDUPS[name] = _measure_capture()
    elif name == "sweep_pipelined":
        _SPEEDUPS[name] = _measure_sweep_pipelined()
    else:  # pragma: no cover - defensive
        raise ValueError(name)


#: CI gates, enforced only on the numba backend (the nightly ``[jit]``
#: matrix): the array-native capture must hold the PR acceptance floor of
#: 2x over the scalar pass, and pipelining must never make a sweep slower
#: than the barrier (5% scheduling-noise allowance).
SPEEDUP_GATES = {
    "capture": 2.0,
    "sweep_pipelined": 0.95,
}


def _gate_enforced(name: str) -> bool:
    """Both scenarios measure the vec stack: without numba the numpy
    fallback is exercised (and recorded) for the bit-identity guarantee,
    but its throughput is not a release gate."""
    return _SPEEDUPS[name].get("backend") == "numba"


def _snapshot_identity() -> dict:
    """Exactly what makes two kernel snapshots comparable (hashed)."""
    _, cap_quota, cap_warmup = _capture_setup()
    _, pipe_quota, pipe_warmup = _pipeline_setup()
    return {
        "capture_mix": list(CAPTURE_MIX),
        "capture_quota": cap_quota,
        "capture_warmup": cap_warmup,
        "pipeline_mixes": {name: list(mix) for name, mix in PIPELINE_MIXES.items()},
        "pipeline_quota": pipe_quota,
        "pipeline_warmup": pipe_warmup,
        "policies": list(SWEEP_POLICIES),
        "replay_slack": replay_slack(),
    }


def test_capture_speedup_recorded(save_result):
    """Summarise the scenarios, write ``BENCH_kernels.json``, gate."""
    for name in SPEEDUP_GATES:
        _ensure_scenario(name)
    lines = ["scenario          vec acc/s   scalar acc/s   speedup"]
    for name, info in _SPEEDUPS.items():
        lines.append(
            f"{name:<16} {info['accesses_per_second_fast']:>10,.0f} "
            f"{info['accesses_per_second_generic']:>14,.0f} "
            f"{info['kernel_speedup']:>8.2f}x  [{info['backend']}]"
        )
    save_result("capture_throughput", "\n".join(lines))

    scenarios = {name: dict(info) for name, info in _SPEEDUPS.items()}
    scenarios["hot_loop"] = measure_kernel_throughput()
    snapshot = build_kernel_snapshot(
        _snapshot_identity(), scenarios, backend=capture_vec.warm_backend()
    )
    write_snapshot(snapshot, _REPO_ROOT / "BENCH_kernels.json")

    for name, gate in SPEEDUP_GATES.items():
        if not _gate_enforced(name):
            continue
        assert _SPEEDUPS[name]["kernel_speedup"] >= gate, (
            f"{name} speedup {_SPEEDUPS[name]['kernel_speedup']:.2f}x "
            f"below the {gate}x gate"
        )
