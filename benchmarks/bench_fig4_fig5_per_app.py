"""Figures 4 and 5: per-application MPKI reduction and IPC speed-up.

Paper: averaged over the 16-core workloads, thrashing applications show
little MPKI movement under ADAPT (bypass barely hurts them; cactusADM is
the exception) while non-thrashing applications see large MPKI reductions
and IPC gains.
"""

from repro.experiments.perapp import run_perapp
from repro.trace.benchmarks import BENCHMARKS


def test_fig4_fig5_per_app(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: run_perapp(runner, 16), rounds=1, iterations=1)
    save_result(
        "fig4_fig5_per_app",
        result.render(thrashing=True) + "\n\n" + result.render(thrashing=False),
    )

    adapt_red = result.mpki_reduction["adapt_bp32"]
    adapt_ipc = result.ipc_speedup["adapt_bp32"]

    friendly = [a for a in adapt_red if not BENCHMARKS[a].thrashing]
    thrashing = [a for a in adapt_red if BENCHMARKS[a].thrashing]
    assert friendly and thrashing

    # Fig. 5 shape: a meaningful set of friendly apps gains MPKI under ADAPT.
    gains = [adapt_red[a] for a in friendly]
    assert max(gains) > 5.0, f"expected a clear friendly-app MPKI win, got {max(gains):.1f}%"

    # Fig. 4 shape: bypassing must not slow thrashing apps down much
    # (paper: no slow-down except cactusADM).
    slowed = [a for a in thrashing if adapt_ipc.get(a, 1.0) < 0.95 and a != "cact"]
    assert not slowed, f"thrashing apps slowed by bypassing: {slowed}"
