"""Figure 6: converting distant insertions to bypasses, per policy.

Paper: bypassing improves TA-DRRIP (it effectively learns BRRIP with
bypass for thrashing applications) and EAF (93% of its insertions are
distant), marginally hurts SHiP (its rare distant predictions are ~69%
wrong), and gives ADAPT its final margin.
"""

from repro.experiments.fig6 import run_fig6


def test_fig6_bypass_impact(benchmark, runner, save_result):
    result = benchmark.pedantic(lambda: run_fig6(runner), rounds=1, iterations=1)
    save_result("fig6_bypass", result.render())

    tad_ins, tad_byp = result.bars["TA-DRRIP"]
    eaf_ins, eaf_byp = result.bars["EAF"]
    adapt_ins, adapt_byp = result.bars["ADAPT"]

    assert tad_byp >= tad_ins - 0.002, "bypass should help (or not hurt) TA-DRRIP"
    assert eaf_byp >= eaf_ins - 0.002, "bypass should help (or not hurt) EAF"
    assert adapt_byp >= adapt_ins - 0.002, "ADAPT_bp32 should not lose to ADAPT_ins"
    assert adapt_byp > 1.0, "ADAPT with bypass must beat the TA-DRRIP baseline"
