"""Design-choice ablations for ADAPT (DESIGN.md commitments).

* Priority ranges — the paper's Section 3.2 sweep before fixing
  HP=[0,3] / MP=(3,12].
* Monitoring-interval length — Section 3.1's 0.25M-4M study, expressed as
  multiples of the LLC block count.
* Monitor-set count — Section 3.1 samples 40 sets ("as few as 32 enough").
"""

from repro.experiments.ablation import (
    run_interval_ablation,
    run_monitor_sets_ablation,
    run_priority_range_ablation,
)


def test_ablation_priority_ranges(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_priority_range_ablation(
            runner, high_values=(3.0, 8.0), medium_values=(10.0, 12.0)
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_priority_ranges", result.render())
    spread = max(result.gains.values()) - min(result.gains.values())
    # The paper found the scheme robust across ranges; enormous spread
    # would indicate the classification, not the ranges, is doing the work.
    assert spread < 5.0, f"priority ranges unexpectedly dominant: {spread:.2f}pp spread"


def test_ablation_interval(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_interval_ablation(runner, multipliers=(4, 16)),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_interval", result.render())
    short = result.gains["interval = 4x LLC blocks"]
    long = result.gains["interval = 16x LLC blocks"]
    # DESIGN.md: the short interval undersamples per-app footprints at 16
    # cores, so the long interval must not be worse.
    assert long >= short - 0.5


def test_ablation_monitor_sets(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_monitor_sets_ablation(runner, set_counts=(8, 40)),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_monitor_sets", result.render())
    assert result.gains["40 monitor sets"] > -1.0
