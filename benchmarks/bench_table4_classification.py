"""Tables 4 and 5: standalone benchmark characterisation and classification.

Each synthetic benchmark runs alone with both footprint monitors attached
(all-sets/32-entry for Fpn(A), 40-set/16-entry for Fpn(S)); the measured
(Footprint-number, L2-MPKI) pair feeds the Table 5 classifier and the
resulting class is compared against the paper's Table 4 type column.
"""

from repro.experiments.table4 import run_table4
from repro.trace.benchmarks import BENCHMARKS


def test_table4_classification(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_table4(runner.config, runner.settings, pool=runner.pool),
        rounds=1,
        iterations=1,
    )
    save_result("table4_classification", result.render())

    # The large majority of benchmarks must land in their paper class —
    # borderline rows (MPKI within a whisker of a boundary) may flip.
    assert result.matches >= round(0.75 * len(result.rows)), (
        f"only {result.matches}/{len(result.rows)} benchmarks matched their class"
    )
    by_name = {row.name: row for row in result.rows}
    # The thrashing/non-thrashing split is the property ADAPT relies on.
    for name, row in by_name.items():
        if BENCHMARKS[name].thrashing:
            assert row.fpn_sampled >= 14, (
                f"{name} should look thrashing, Fpn={row.fpn_sampled:.1f}"
            )
    # Sampling fidelity (paper: only vpr differs by more than 1; we allow a
    # modest band since the 16-entry sampled arrays saturate earlier).
    for row in result.rows:
        if row.fpn_all < 14:
            assert abs(row.fpn_all - row.fpn_sampled) < 3.0, row.name
