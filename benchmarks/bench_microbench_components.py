"""Component micro-benchmarks (real pytest-benchmark timing runs).

Not a paper artifact: these track the simulator's own hot paths — the LLC
access loop under each policy family, the footprint sampler, and the
multi-core engine — so performance regressions in the substrate are
visible.
"""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.footprint import FootprintSampler
from repro.cpu.engine import MulticoreEngine
from repro.policies.registry import make_policy
from repro.sim.build import build_hierarchy, build_sources
from repro.sim.config import SystemConfig
from repro.trace.workloads import design_suite

N_ACCESSES = 20_000


def _drive_cache(policy_name: str) -> int:
    cache = SetAssociativeCache("llc", 256, 16, make_policy(policy_name), num_cores=4)
    rng = np.random.default_rng(7)
    addrs = rng.integers(0, 1 << 14, size=N_ACCESSES).tolist()
    cores = rng.integers(0, 4, size=N_ACCESSES).tolist()
    access = cache.access
    for addr, core in zip(addrs, cores):
        access(core, addr, addr & 0xFF)
    return cache.stats.misses()


@pytest.mark.parametrize("policy", ["lru", "srrip", "tadrrip", "ship", "eaf", "adapt_bp32"])
def test_llc_access_throughput(benchmark, policy):
    misses = benchmark.pedantic(_drive_cache, args=(policy,), rounds=3, iterations=1)
    assert misses > 0


def test_footprint_sampler_throughput(benchmark):
    sampler = FootprintSampler(llc_num_sets=256, num_monitor_sets=40)
    monitored = sampler.monitored_sets
    rng = np.random.default_rng(3)
    sets = rng.choice(monitored, size=N_ACCESSES).tolist()
    addrs = rng.integers(0, 1 << 20, size=N_ACCESSES).tolist()

    def drive():
        for s, a in zip(sets, addrs):
            sampler.observe(s, a)
        return sampler.footprint_number()

    value = benchmark.pedantic(drive, rounds=3, iterations=1)
    assert value > 0


def test_engine_throughput(benchmark):
    config = SystemConfig.scaled(4)
    workload = design_suite(4, 1)[0]

    def drive():
        hierarchy = build_hierarchy(config, "adapt_bp32")
        sources = build_sources(workload, config)
        engine = MulticoreEngine(hierarchy, sources, quota_per_core=4000)
        return engine.run()

    snapshots = benchmark.pedantic(drive, rounds=2, iterations=1)
    assert all(s.instructions > 0 for s in snapshots)
