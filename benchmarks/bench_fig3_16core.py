"""Figure 3: 16-core weighted-speed-up s-curves over TA-DRRIP.

Paper: ADAPT_bp32 averages +4.7% (up to +7%) over TA-DRRIP across sixty
16-core workloads; LRU loses; SHiP is slightly below baseline; EAF sits
between ADAPT_ins and ADAPT_bp32.  Expected reproduced shape: ADAPT
variants and EAF clearly above baseline with mid-single-digit average
gains, LRU below baseline.  (Known deviation: our SHiP lands *above* its
paper counterpart — see EXPERIMENTS.md.)
"""

from repro.experiments.scurves import run_scurve


def test_fig3_16core_scurve(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_scurve(runner, 16), rounds=1, iterations=1
    )
    save_result("fig3_16core", result.render())

    adapt = result.mean_gain_percent("adapt_bp32")
    lru = result.mean_gain_percent("lru")
    eaf = result.mean_gain_percent("eaf")
    # Shape assertions from the paper's Figure 3.
    assert adapt > 0.5, f"ADAPT_bp32 should beat TA-DRRIP on average, got {adapt:+.2f}%"
    assert lru < adapt, "LRU must trail ADAPT"
    assert lru < 1.0, "LRU should not beat the baseline meaningfully"
    assert eaf > 0.0, "EAF should improve on TA-DRRIP"
    assert result.mean_gain_percent("adapt_ins") <= adapt + 0.5, (
        "bypassing (bp32) should not lose to pure insertion"
    )
