"""Figure 8: scalability with the number of applications.

Paper: ADAPT outperforms the prior policies at every core count — average
gains of ~4.8% (4-core), ~3.5% (8-core), ~5.8% (20-core), ~5.9% (24-core)
— with the gains *growing* once the core count exceeds the associativity.
"""

import pytest

from repro.experiments.scurves import run_scurve


@pytest.mark.parametrize("cores", [4, 8, 20, 24])
def test_fig8_scaling(benchmark, runner, save_result, cores):
    result = benchmark.pedantic(
        lambda: run_scurve(runner, cores), rounds=1, iterations=1
    )
    save_result(f"fig8_{cores}core", result.render())

    adapt = result.mean_gain_percent("adapt_bp32")
    lru = result.mean_gain_percent("lru")
    assert adapt > lru, f"{cores}-core: ADAPT must beat LRU"
    assert adapt > -0.5, f"{cores}-core: ADAPT should not lose to TA-DRRIP ({adapt:+.2f}%)"
