"""Figure 7 / Section 5.5: larger, higher-associativity caches.

Paper: growing the LLC from 16 to 24 and 32 ways (24MB/32MB) leaves
ADAPT's advantage intact for 16/20/24-core workloads, even though the
priority thresholds were fixed for a 16-way budget.
"""

from repro.experiments.fig7 import run_fig7


def test_fig7_larger_caches(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: run_fig7(runner, core_counts=(16, 20), way_factors=(1.5, 2.0)),
        rounds=1,
        iterations=1,
    )
    save_result("fig7_large_caches", result.render())

    # Shape: ADAPT keeps a non-negative edge at higher associativity.
    for (cache, cores), gain in result.gains.items():
        assert gain > -1.0, f"ADAPT collapsed on {cache} {cores}-core: {gain:+.2f}%"
    assert any(g > 0.5 for g in result.gains.values()), (
        "ADAPT should keep a clear edge on at least one larger-cache point"
    )
