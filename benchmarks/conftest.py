"""Shared session state for the paper-figure benches.

A single session-scoped :class:`~repro.experiments.common.Runner` memoises
every workload run and IPC_alone baseline, so e.g. the Figure 4/5 bench
reuses the Figure 3 bench's TA-DRRIP runs instead of re-simulating them.

Each bench writes its rendered paper-style rows to
``benchmarks/results/<name>.txt`` (and stdout), so the regenerated tables
and series survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings, Runner
from repro.sim.config import SystemConfig

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(SystemConfig.scaled(16), ExperimentSettings.from_env())


@pytest.fixture(scope="session")
def save_result():
    """Write a bench's rendered output to results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
