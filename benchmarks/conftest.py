"""Shared session state for the paper-figure benches.

A single session-scoped :class:`~repro.experiments.common.Runner` memoises
every workload run and IPC_alone baseline, so e.g. the Figure 4/5 bench
reuses the Figure 3 bench's TA-DRRIP runs instead of re-simulating them.

The runner executes through the :mod:`repro.runner` process pool
(``REPRO_JOBS`` workers) and persists completed runs in a result store
under ``benchmarks/results/store/`` (override with ``REPRO_RESULTS_DIR``;
set ``REPRO_BENCH_NO_STORE=1`` to disable persistence), so a re-run of
the bench suite at the same scale performs no new simulation.

Each bench writes its rendered paper-style rows to
``benchmarks/results/<name>.txt`` (and stdout), so the regenerated tables
and series survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings, Runner
from repro.sim.config import SystemConfig

RESULTS_DIR = Path(__file__).parent / "results"


def _store_dir() -> Path | None:
    if os.environ.get("REPRO_BENCH_NO_STORE"):
        return None
    override = os.environ.get("REPRO_RESULTS_DIR")
    return Path(override) if override else RESULTS_DIR / "store"


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(
        SystemConfig.scaled(16),
        ExperimentSettings.from_env(),
        results_dir=_store_dir(),
    )


@pytest.fixture(scope="session")
def save_result():
    """Write a bench's rendered output to results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
