"""Accesses/second microbench of the raw engine loop (no runner/store).

Not a paper artifact: this tracks the simulator's own per-access cost — the
quantity the fused fast-path kernel (:mod:`repro.cpu.fastpath`) optimises —
so kernel regressions (or future wins) are visible in the recorded
``BENCH_*.json`` history across PRs.

Three scenarios, each driven through ``MulticoreEngine.run`` on both
kernels (the fast path and ``force_generic=True``, i.e. the pre-fast-path
reference loop):

* ``hot_loop`` — a single core running an L1-resident VL-class application
  (``calc``).  Misses are rare, so this isolates the *kernel dispatch*
  cost per access: trace decode, L1 lookup/update, scheduling and
  bookkeeping.  This is the headline kernel-speedup number because the
  shared miss physics (DRAM, banks, MSHRs — identical work in both
  kernels) barely contributes.
* ``single_app`` — one medium-intensity application (``mcf``), the shape
  of every Table 4 / ``IPC_alone`` baseline run.
* ``multicore`` — the first Table 6 four-core mix under the headline
  ``adapt_bp32`` policy, the shape of the figure experiments.
* ``l1_prefetch`` / ``l2_prefetch`` — the ``single_app`` shape with the
  Table 3 next-line prefetcher and the Section 7 L2 stride prefetcher
  respectively: the configurations PR 3 made fast-path eligible (they
  previously forced the generic loop for the whole run).
* ``ship_llc`` — the four-core mix under SHiP, exercising the native
  ``"ship"`` fast-op kind (inline signature/outcome/SHCT training that
  previously dispatched through ``_CALL``-mode hooks).
* ``llc_sweep`` — an eight-policy sweep over one four-core low-intensity
  mix: the experiment shape the LLC-filtered replay engine
  (:mod:`repro.cpu.replay`) targets.  Unlike the per-kernel scenarios it
  compares *pipelines*: one capture pass plus eight replays against eight
  fused runs, i.e. exactly what ``ParallelRunner`` schedules for an
  s-curve point.
* ``llc_sweep_vec`` — the same capture-plus-sweep shape, comparing the
  array-native replay kernel (:mod:`repro.cpu.replay_vec`) against the
  scalar replay loop it mirrors, over one shared capture.  The ratio is
  recorded on whichever backend resolves (numba JIT or the pure-numpy
  fallback); the >=3x gate is enforced only for the numba build, which
  the nightly matrix installs via the ``[jit]`` extra.

Each scenario records fast and generic accesses/second plus their ratio in
``extra_info``; the ``test_kernel_speedup_recorded`` summary asserts the
bit-identical kernels actually diverge in speed (fast strictly faster
everywhere, with conservative per-scenario gates — measured locally at
~3.3x hot-loop / ~2.7x single-app / ~2.2x multicore / ~3.2x l1-prefetch /
~2.6x l2-prefetch / ~2.0x ship / ~3.6x llc-sweep).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.cpu.capture import capture_workload
from repro.cpu.engine import MulticoreEngine
from repro.cpu.replay import run_replay
from repro.cpu.replay_vec import run_replay_vec, vec_backend, warm_backend
from repro.experiments.common import scale_factor
from repro.sim.build import build_hierarchy, build_sources
from repro.sim.config import SystemConfig
from repro.trace.workloads import Workload, design_suite

#: Measured accesses per core, scaled like the experiment budgets so
#: ``REPRO_SCALE=0.1`` smoke runs stay fast.
BASE_QUOTA = 40_000

_SPEEDUPS: dict[str, dict[str, float]] = {}


def _scenario(name: str):
    scale = max(0.1, min(scale_factor(), 1.0))
    quota = max(2_000, round(BASE_QUOTA * scale))
    if name == "hot_loop":
        config = SystemConfig.scaled(16).with_cores(1)
        workload = Workload("hot", ("calc",))
        # The hot loop runs at ~1M accesses/s, so a fixed steady-state
        # budget costs milliseconds even in smoke runs; scaling it down
        # would just re-weight the one-off cold-start fills it is designed
        # to exclude from the dispatch-cost measurement.
        quota = BASE_QUOTA
    elif name == "single_app":
        config = SystemConfig.scaled(16).with_cores(1)
        workload = Workload("alone", ("mcf",))
    elif name == "multicore":
        config = SystemConfig.scaled(4)
        workload = design_suite(4, 1)[0]
        quota = max(1_000, quota // 4)
    elif name == "l1_prefetch":
        config = replace(
            SystemConfig.scaled(16).with_cores(1), l1_next_line_prefetch=True
        )
        workload = Workload("alone", ("mcf",))
    elif name == "l2_prefetch":
        config = replace(
            SystemConfig.scaled(16).with_cores(1), l2_stride_prefetch=True
        )
        workload = Workload("alone", ("mcf",))
    elif name == "ship_llc":
        config = SystemConfig.scaled(4)
        workload = design_suite(4, 1)[0]
        quota = max(1_000, quota // 4)
    else:  # pragma: no cover - defensive
        raise ValueError(name)
    policy = {"multicore": "adapt_bp32", "ship_llc": "ship"}.get(name, "tadrrip")
    return config, workload, policy, quota


def _accesses_per_second(name: str, force_generic: bool, repeats: int = 3) -> float:
    config, workload, policy, quota = _scenario(name)
    best = float("inf")
    for _ in range(repeats):
        hierarchy = build_hierarchy(config, policy)
        sources = build_sources(workload, config)
        engine = MulticoreEngine(hierarchy, sources, quota_per_core=quota)
        start = time.perf_counter()
        engine.run(force_generic=force_generic)
        elapsed = time.perf_counter() - start
        total = sum(core.accesses for core in engine.cores)
        best = min(best, elapsed / total)
    return 1.0 / best


def _drive(benchmark, name: str) -> dict[str, float]:
    config, workload, policy, quota = _scenario(name)

    def run_fast_kernel():
        hierarchy = build_hierarchy(config, policy)
        sources = build_sources(workload, config)
        engine = MulticoreEngine(hierarchy, sources, quota_per_core=quota)
        engine.run()
        return sum(core.accesses for core in engine.cores)

    accesses = benchmark.pedantic(run_fast_kernel, rounds=3, iterations=1)
    fast = accesses / benchmark.stats.stats.min
    generic = _accesses_per_second(name, force_generic=True)
    info = {
        "accesses_per_second_fast": fast,
        "accesses_per_second_generic": generic,
        "kernel_speedup": fast / generic,
        "accesses": accesses,
    }
    benchmark.extra_info.update(info)
    _SPEEDUPS[name] = info
    return info


def test_kernel_hot_loop_throughput(benchmark):
    info = _drive(benchmark, "hot_loop")
    assert info["accesses"] > 0
    assert info["kernel_speedup"] > 1.0


def test_kernel_single_app_throughput(benchmark):
    info = _drive(benchmark, "single_app")
    assert info["kernel_speedup"] > 1.0


def test_kernel_multicore_throughput(benchmark):
    info = _drive(benchmark, "multicore")
    assert info["kernel_speedup"] > 1.0


def test_kernel_l1_prefetch_throughput(benchmark):
    info = _drive(benchmark, "l1_prefetch")
    assert info["kernel_speedup"] > 1.0


def test_kernel_l2_prefetch_throughput(benchmark):
    info = _drive(benchmark, "l2_prefetch")
    assert info["kernel_speedup"] > 1.0


def test_kernel_ship_llc_throughput(benchmark):
    info = _drive(benchmark, "ship_llc")
    assert info["kernel_speedup"] > 1.0


# -- the replay-engine sweep scenario -----------------------------------------

#: The swept policies: every inline family once, at paper duelling sizes.
SWEEP_POLICIES = ("lru", "srrip", "brrip", "drrip", "tadrrip", "ship", "eaf", "dip")

#: A four-core low-intensity mix (VL/L classes): the private levels absorb
#: most traffic, which is the share the capture pass amortises across the
#: sweep.  Thrash-heavy mixes keep the LLC busy in both pipelines and gain
#: correspondingly less — this scenario pins the intended sweep shape.
SWEEP_MIX = ("gcc", "calc", "craf", "deal")


def _sweep_setup():
    # Like ``hot_loop``, the budget is pinned: the scenario measures the
    # steady-state amortisation of one capture across eight replays, and
    # scaling it down would just re-weight the capture's one-off
    # source-construction cost that the sweep shape amortises away.
    quota = BASE_QUOTA // 2
    warmup = quota // 4
    config = SystemConfig.scaled(16).with_cores(len(SWEEP_MIX))
    workload = Workload("llc_sweep", SWEEP_MIX)
    return config, workload, quota, warmup


def _measure_llc_sweep() -> dict[str, float]:
    """Time eight fused runs against one capture plus eight replays."""
    config, workload, quota, warmup = _sweep_setup()

    def engine_for(policy):
        hierarchy = build_hierarchy(config, policy)
        sources = build_sources(workload, config)
        return MulticoreEngine(
            hierarchy, sources, quota_per_core=quota, warmup_accesses=warmup
        )

    start = time.perf_counter()
    accesses = 0
    fused_snapshots = []
    for policy in SWEEP_POLICIES:
        engine = engine_for(policy)
        fused_snapshots.append(engine.run())
        accesses += sum(core.accesses for core in engine.cores)
    fused_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    bundle = capture_workload(workload.benchmarks, config, quota, warmup, 0)
    replay_snapshots = []
    for policy in SWEEP_POLICIES:
        replay_snapshots.append(run_replay(engine_for(policy), bundle, finalize=False))
    replay_elapsed = time.perf_counter() - start
    assert replay_snapshots == fused_snapshots, "replay diverged from fused"

    return {
        "accesses_per_second_fast": accesses / replay_elapsed,
        "accesses_per_second_generic": accesses / fused_elapsed,
        "kernel_speedup": fused_elapsed / replay_elapsed,
        "accesses": accesses,
        "policies": len(SWEEP_POLICIES),
    }


def _measure_llc_sweep_recording() -> dict[str, float]:
    """One sweep measurement, folded into the best-of-rounds summary.

    Like the other scenarios' min-elapsed timing, the gate reads the best
    round — ``benchmark.pedantic`` only returns the final one.
    """
    info = _measure_llc_sweep()
    best = _SPEEDUPS.get("llc_sweep")
    if best is None or info["kernel_speedup"] > best["kernel_speedup"]:
        _SPEEDUPS["llc_sweep"] = info
    return info


def test_kernel_llc_sweep_throughput(benchmark):
    """Capture + N-policy replay vs N fused runs (the ParallelRunner shape)."""
    benchmark.pedantic(_measure_llc_sweep_recording, rounds=3, iterations=1)
    info = _SPEEDUPS["llc_sweep"]
    benchmark.extra_info.update(info)
    assert info["kernel_speedup"] > 1.0


def _measure_llc_sweep_vec() -> dict[str, float]:
    """Eight array-native replays vs eight scalar replays of one capture.

    The capture is shared (and timed in neither pipeline): this scenario
    isolates the replay-loop cost the SoA kernel attacks — batched event
    decode, vectorised clock walks, folded SHiP signatures — against the
    scalar per-event loop.  ``warm_backend`` runs outside the timed region,
    mirroring the parallel runner's capture-phase warm-up, so a numba
    build measures steady-state JIT throughput, not compilation.
    """
    config, workload, quota, warmup = _sweep_setup()

    def engine_for(policy):
        hierarchy = build_hierarchy(config, policy)
        sources = build_sources(workload, config)
        return MulticoreEngine(
            hierarchy, sources, quota_per_core=quota, warmup_accesses=warmup
        )

    bundle = capture_workload(workload.benchmarks, config, quota, warmup, 0)
    backend = warm_backend()
    accesses = quota * len(SWEEP_MIX) * len(SWEEP_POLICIES)

    start = time.perf_counter()
    scalar_snapshots = []
    for policy in SWEEP_POLICIES:
        scalar_snapshots.append(run_replay(engine_for(policy), bundle, finalize=False))
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    vec_snapshots = []
    for policy in SWEEP_POLICIES:
        vec_snapshots.append(run_replay_vec(engine_for(policy), bundle, finalize=False))
    vec_elapsed = time.perf_counter() - start
    assert vec_snapshots == scalar_snapshots, "replay_vec diverged from scalar replay"

    return {
        "accesses_per_second_fast": accesses / vec_elapsed,
        "accesses_per_second_generic": accesses / scalar_elapsed,
        "kernel_speedup": scalar_elapsed / vec_elapsed,
        "accesses": accesses,
        "policies": len(SWEEP_POLICIES),
        "backend": backend,
    }


def _measure_llc_sweep_vec_recording() -> dict[str, float]:
    info = _measure_llc_sweep_vec()
    best = _SPEEDUPS.get("llc_sweep_vec")
    if best is None or info["kernel_speedup"] > best["kernel_speedup"]:
        _SPEEDUPS["llc_sweep_vec"] = info
    return info


def test_kernel_llc_sweep_vec_throughput(benchmark):
    """Array-native vs scalar replay over the same capture (per backend).

    The differential assert inside the measurement is the hard gate here;
    the throughput ratio is recorded on both backends but only enforced
    for the numba build (in the summary test) — the pure-numpy fallback
    prioritises bit-identity over speed.
    """
    benchmark.pedantic(_measure_llc_sweep_vec_recording, rounds=3, iterations=1)
    info = _SPEEDUPS["llc_sweep_vec"]
    benchmark.extra_info.update(info)
    assert info["accesses"] > 0


def _ensure_scenario(name: str) -> None:
    """Measure *name* directly if its benchmark test was deselected.

    Keeps the summary test self-contained under arbitrary selection or
    ordering (``-k``, ``pytest-xdist``) at the cost of re-timing without
    pytest-benchmark statistics.
    """
    if name in _SPEEDUPS:
        return
    if name == "llc_sweep":
        _SPEEDUPS[name] = _measure_llc_sweep()
        return
    if name == "llc_sweep_vec":
        _SPEEDUPS[name] = _measure_llc_sweep_vec()
        return
    fast = _accesses_per_second(name, force_generic=False)
    generic = _accesses_per_second(name, force_generic=True)
    _SPEEDUPS[name] = {
        "accesses_per_second_fast": fast,
        "accesses_per_second_generic": generic,
        "kernel_speedup": fast / generic,
    }


#: Conservative per-scenario CI gates (local measurements run well above
#: these): the hot loop isolates pure kernel overhead and must stay >= 2x,
#: the two prefetch shapes must hold the PR 3 acceptance floor of 2x, the
#: replay-engine sweep must hold its acceptance floor of 3x end to end
#: (one capture amortised across eight policies; measured ~3.6x locally),
#: and the array-native replay must beat the scalar replay by 3x when the
#: numba backend is available (the nightly JIT matrix).
SPEEDUP_GATES = {
    "hot_loop": 2.0,
    "single_app": 1.5,
    "multicore": 1.5,
    "l1_prefetch": 2.0,
    "l2_prefetch": 2.0,
    "ship_llc": 1.5,
    "llc_sweep": 3.0,
    "llc_sweep_vec": 3.0,
}


def _gate_enforced(name: str) -> bool:
    """The ``llc_sweep_vec`` gate measures the JIT backend: without numba
    the numpy fallback is exercised (and its ratio recorded) for the
    bit-identity guarantee, but its throughput is not a release gate."""
    if name == "llc_sweep_vec":
        return _SPEEDUPS[name].get("backend") == "numba"
    return True


def test_kernel_speedup_recorded(save_result):
    """Summarise the kernel comparison and gate against regressions."""
    for name in SPEEDUP_GATES:
        _ensure_scenario(name)
    lines = ["scenario        fast acc/s   generic acc/s   speedup"]
    for name, info in _SPEEDUPS.items():
        suffix = f"  [{info['backend']}]" if "backend" in info else ""
        lines.append(
            f"{name:<14} {info['accesses_per_second_fast']:>12,.0f} "
            f"{info['accesses_per_second_generic']:>15,.0f} "
            f"{info['kernel_speedup']:>8.2f}x{suffix}"
        )
    save_result("kernel_throughput", "\n".join(lines))
    for name, gate in SPEEDUP_GATES.items():
        if not _gate_enforced(name):
            continue
        assert _SPEEDUPS[name]["kernel_speedup"] >= gate, (
            f"{name} speedup {_SPEEDUPS[name]['kernel_speedup']:.2f}x "
            f"below the {gate}x gate"
        )
